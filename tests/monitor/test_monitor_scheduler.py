"""InstabilityMonitor: the ingest -> snapshot -> retrain -> drift loop.

Runs the monitor in ``sync`` mode (retrains inline, deterministic) against a
real :class:`StabilityService` and pins the subsystem's core guarantees:
rolling retrains aggregate to exactly what an equivalent batch grid run
yields, unchanged corpora cut no new versions, and an already-measured
version pair answers warm -- no grid, no training.
"""

import dataclasses
import warnings

import pytest

from repro.engine import GridEngine
from repro.instability.pipeline import InstabilityPipeline
from repro.monitor import DriftEvaluator, InstabilityMonitor, MonitorConfig
from repro.serving import StabilityService
from repro.serving.api import quick_serve_config


@pytest.fixture(scope="module")
def service():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        service = StabilityService(quick_serve_config())
    yield service
    service.close()


@pytest.fixture(scope="module")
def token_documents(service):
    """The served synthetic corpus as token text -- the ingestable form."""
    corpus = service.pipeline.corpus_pair.base
    return [[corpus.word_list[i] for i in doc] for doc in corpus.documents]


@pytest.fixture(scope="module")
def monitored(service, token_documents):
    """One full monitored lifecycle: two batches, two versions, one retrain."""
    monitor = InstabilityMonitor(
        service, MonitorConfig(sync=True, thresholds={"eis": 0.0})
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        first = monitor.ingest(token_documents[:40])
        second = monitor.ingest(token_documents[40:])
    yield monitor, first, second
    monitor.close()


class TestRollingRetrain:
    def test_two_batches_cut_two_versions(self, monitored):
        monitor, first, second = monitored
        assert first["version"] == 1 and first["cut"]
        assert second["version"] == 2 and second["cut"]
        counters = monitor.counters()
        assert counters["snapshots_cut"] == 2
        assert counters["retrains_dispatched"] == 1
        assert counters["retrains_completed"] == 1
        assert counters["retrains_failed"] == 0

    def test_event_narrative(self, monitored):
        monitor, _, _ = monitored
        kinds = [e["kind"] for e in monitor.events.events()]
        assert kinds == [
            "snapshot_cut", "snapshot_cut", "retrain_started",
            "measures_ready", "drift_alert",
        ]

    def test_report_aggregates_full_grid(self, monitored):
        monitor, _, _ = monitored
        report = monitor.drift.last_report
        assert report is not None
        assert report.cells == 4          # svd x dims(4,6) x precisions(1,32)
        assert report.drifted             # eis > 0.0 threshold
        assert report.base_version == 1 and report.version == 2

    def test_bit_identical_to_batch_grid_run(self, monitored, service):
        # An equivalent *batch* grid over the same snapshot pair -- through a
        # fresh pipeline on a FRESH store holding only the snapshots, so
        # every cell genuinely retrains -- must aggregate to the very same
        # report: same cells, bit-equal measure floats.
        from repro.corpus.snapshots import load_snapshot, store_snapshot
        from repro.engine.store import ArtifactStore

        monitor, _, _ = monitored
        report = monitor.drift.last_report
        config = monitor.retrain_config(*report.snapshot_pair)
        fresh_store = ArtifactStore()
        for key in report.snapshot_pair:
            store_snapshot(fresh_store, load_snapshot(service.store, key))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            records = GridEngine(
                InstabilityPipeline(config, store=fresh_store),
                coordinator_url="",
            ).run(with_measures=True)
        batch_report = DriftEvaluator(monitor.drift.thresholds).evaluate(
            records,
            base_version=report.base_version,
            version=report.version,
            snapshot_pair=report.snapshot_pair,
        )
        assert batch_report.measures == report.measures       # exact, not approx
        assert batch_report.disagreement == report.disagreement
        assert batch_report.alerts == report.alerts

    def test_warm_reevaluation_trains_nothing(self, monitored, service):
        # Re-evaluating the measured pair answers from the cached report:
        # zero new trainings, zero new grid dispatches.
        monitor, _, _ = monitored
        report = monitor.drift.last_report
        before = monitor.counters()
        key_pair = report.snapshot_pair
        warm = monitor.evaluate_pair(
            report.base_version, key_pair[0], report.version, key_pair[1]
        )
        after = monitor.counters()
        assert warm.measures == report.measures
        assert after["reports_warm"] == before["reports_warm"] + 1
        assert after["retrains_completed"] == before["retrains_completed"]
        assert after["local_embedding_trainings"] == before["local_embedding_trainings"]
        # Warm path narrates measures_ready (warm) + the still-standing
        # drift alert, but never a retrain_started.
        events = monitor.events.events()
        assert [e["kind"] for e in events[-2:]] == ["measures_ready", "drift_alert"]
        assert events[-2]["warm"] is True
        assert "retrain_started" not in [e["kind"] for e in events[-2:]]

    def test_unchanged_corpus_skips_snapshot(self, monitored):
        monitor, _, _ = monitored
        before = monitor.counters()
        result = monitor.cut_snapshot()           # nothing ingested since v2
        assert result["cut"] is False
        assert result["version"] == 2
        after = monitor.counters()
        assert after["snapshots_cut"] == before["snapshots_cut"]
        assert after["snapshots_skipped"] == before["snapshots_skipped"] + 1
        assert after["retrains_dispatched"] == before["retrains_dispatched"]

    def test_snapshot_monitor_section(self, monitored, service):
        monitor, _, _ = monitored
        snapshot = monitor.snapshot()
        assert snapshot["version"] == 2
        assert len(snapshot["versions"]) == 2
        assert snapshot["last_report"]["drifted"] is True
        assert snapshot["ingest"]["documents"] == 60
        # Attaching the monitor surfaces it in the service's metrics.
        service.monitor = monitor
        try:
            assert service.metrics()["monitor"]["version"] == 2
        finally:
            service.monitor = None


class TestConfigValidation:
    def test_bad_knobs(self):
        with pytest.raises(ValueError):
            MonitorConfig(snapshot_every_batches=0)
        with pytest.raises(ValueError):
            MonitorConfig(cadence_seconds=-1)
        with pytest.raises(ValueError):
            MonitorConfig(history=0)
        with pytest.raises(ValueError):
            MonitorConfig(thresholds={"eis": float("nan")})

    def test_enable_monitor_idempotent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            service = StabilityService(quick_serve_config())
        try:
            config = MonitorConfig(sync=True)
            monitor = service.enable_monitor(config)
            assert service.enable_monitor() is monitor
            assert service.enable_monitor(config) is monitor
            with pytest.raises(ValueError):
                service.enable_monitor(MonitorConfig(sync=True, history=4))
        finally:
            service.close()


class TestBatchCadence:
    def test_snapshot_every_n_batches(self, service, token_documents):
        monitor = InstabilityMonitor(
            service,
            MonitorConfig(sync=True, snapshot_every_batches=2, retrain_on_snapshot=False),
        )
        try:
            first = monitor.ingest(token_documents[:10])
            assert first["snapshot"] is None           # 1 of 2 batches
            second = monitor.ingest(token_documents[10:20])
            assert second["cut"] and second["version"] == 1
        finally:
            monitor.close()

    def test_explicit_cut_override(self, service, token_documents):
        monitor = InstabilityMonitor(
            service,
            MonitorConfig(sync=True, snapshot_every_batches=5, retrain_on_snapshot=False),
        )
        try:
            forced = monitor.ingest(token_documents[:10], cut=True)
            assert forced["cut"] and forced["version"] == 1
            suppressed = monitor.ingest(token_documents[10:20], cut=False)
            assert suppressed["snapshot"] is None
        finally:
            monitor.close()
