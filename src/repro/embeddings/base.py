"""Embedding container and the common interface of embedding algorithms."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.corpus.synthetic import Corpus
from repro.corpus.vocabulary import Vocabulary
from repro.utils.registry import Registry
from repro.utils.validation import check_array, float_dtype_of

__all__ = ["Embedding", "EmbeddingAlgorithm", "EMBEDDING_ALGORITHMS"]

#: Registry of embedding algorithms keyed by the names used in the paper
#: ("cbow", "glove", "mc", ...).
EMBEDDING_ALGORITHMS: Registry = Registry("embedding algorithm")


@dataclass
class Embedding:
    """A trained word embedding: a vocabulary plus an ``(n, d)`` matrix.

    Attributes
    ----------
    vocab:
        Vocabulary in row order (row ``i`` embeds ``vocab.id_to_word(i)``).
    vectors:
        Dense float matrix of shape ``(len(vocab), dim)``; float64 unless the
        caller supplies float32 (the float32 kernel policy), which is kept.
    metadata:
        Free-form provenance (algorithm name, corpus name, seed, precision...)
        carried along so experiment records can identify the artifact.
    """

    vocab: Vocabulary
    vectors: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.vectors = check_array(
            self.vectors, name="vectors", ndim=2, dtype=float_dtype_of(self.vectors)
        )
        if self.vectors.shape[0] != len(self.vocab):
            raise ValueError(
                f"vectors has {self.vectors.shape[0]} rows but vocabulary has "
                f"{len(self.vocab)} words"
            )

    # -- basic properties ----------------------------------------------------

    @property
    def dim(self) -> int:
        return int(self.vectors.shape[1])

    @property
    def n_words(self) -> int:
        return int(self.vectors.shape[0])

    def __len__(self) -> int:
        return self.n_words

    def __contains__(self, word: str) -> bool:
        return word in self.vocab

    def vector(self, word: str) -> np.ndarray:
        """Return the embedding of ``word`` (raises ``KeyError`` when unknown)."""
        idx = self.vocab.word_to_id(word)
        if idx is None:
            raise KeyError(f"word {word!r} is not in the embedding vocabulary")
        return self.vectors[idx]

    def get(self, word: str, default: np.ndarray | None = None) -> np.ndarray | None:
        idx = self.vocab.word_to_id(word)
        return self.vectors[idx] if idx is not None else default

    # -- restriction / alignment helpers -------------------------------------

    def restrict(self, words: list[str] | int) -> "Embedding":
        """Restrict to a word list, or to the top-``k`` most frequent words.

        The paper computes every embedding-distance measure over the top-10k
        most frequent words only; passing an ``int`` implements that slice.
        """
        if isinstance(words, int):
            words = self.vocab.words[:words]
        ids = []
        counts = {}
        for w in words:
            idx = self.vocab.word_to_id(w)
            if idx is None:
                raise KeyError(f"word {w!r} is not in the embedding vocabulary")
            ids.append(idx)
            counts[w] = self.vocab.count(w)
        sub_vocab = Vocabulary(counts)
        # Vocabulary orders by frequency; re-gather rows in that order.
        row_ids = [self.vocab.word_to_id(w) for w in sub_vocab.words]
        return Embedding(
            vocab=sub_vocab,
            vectors=self.vectors[np.asarray(row_ids, dtype=np.int64)],
            metadata=dict(self.metadata),
        )

    def astype(self, dtype) -> "Embedding":
        """A copy with vectors cast to ``dtype`` (``self`` when it already matches)."""
        dtype = np.dtype(dtype)
        if self.vectors.dtype == dtype:
            return self
        return Embedding(
            vocab=self.vocab,
            vectors=self.vectors.astype(dtype),
            metadata={**self.metadata, "dtype": dtype.name},
        )

    def with_vectors(self, vectors: np.ndarray, **metadata_updates) -> "Embedding":
        """Return a copy with new vectors (same vocabulary), e.g. after compression."""
        meta = dict(self.metadata)
        meta.update(metadata_updates)
        return Embedding(vocab=self.vocab, vectors=np.asarray(vectors, dtype=np.float64), metadata=meta)

    @staticmethod
    def common_words(a: "Embedding", b: "Embedding", *, top_k: int | None = None) -> list[str]:
        """Words present in both embeddings, ordered by frequency in ``a``."""
        words = [w for w in a.vocab.words if w in b.vocab]
        if top_k is not None:
            words = words[:top_k]
        return words

    @staticmethod
    def aligned_pair(
        a: "Embedding", b: "Embedding", *, top_k: int | None = None
    ) -> tuple["Embedding", "Embedding"]:
        """Restrict both embeddings to their common vocabulary, rows aligned."""
        words = Embedding.common_words(a, b, top_k=top_k)
        if not words:
            raise ValueError("embeddings share no vocabulary")
        ra = a.restrict(words)
        # Force identical row order on b by re-using a's restricted vocab order.
        order = ra.vocab.words
        ids_b = np.asarray([b.vocab.word_to_id(w) for w in order], dtype=np.int64)
        rb = Embedding(vocab=ra.vocab, vectors=b.vectors[ids_b], metadata=dict(b.metadata))
        return ra, rb

    # -- similarity ----------------------------------------------------------

    def normalized_vectors(self) -> np.ndarray:
        """Row-normalised copy of the matrix (zero rows stay zero)."""
        norms = np.linalg.norm(self.vectors, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return self.vectors / norms

    def nearest_neighbors(self, word: str, k: int = 10) -> list[tuple[str, float]]:
        """The ``k`` nearest words to ``word`` by cosine similarity."""
        idx = self.vocab.word_to_id(word)
        if idx is None:
            raise KeyError(f"word {word!r} is not in the embedding vocabulary")
        normed = self.normalized_vectors()
        sims = normed @ normed[idx]
        sims[idx] = -np.inf
        top = np.argsort(-sims)[:k]
        return [(self.vocab.id_to_word(int(i)), float(sims[i])) for i in top]

    # -- persistence ---------------------------------------------------------

    @classmethod
    def from_word_arrays(
        cls, words, counts, vectors, metadata: dict | None = None
    ) -> "Embedding":
        """Rebuild an embedding from parallel word / count / vector arrays.

        :class:`~repro.corpus.vocabulary.Vocabulary` re-sorts words by
        frequency, so the vector rows are re-gathered into the rebuilt
        vocabulary's order.  Shared by :meth:`load` and the store's
        embedding-pair codec.
        """
        words = [str(w) for w in words]
        vocab = Vocabulary({w: int(c) for w, c in zip(words, counts)})
        index = {w: i for i, w in enumerate(words)}
        order = np.asarray([index[w] for w in vocab.words], dtype=np.int64)
        vectors = np.asarray(vectors)
        # Arrays saved in vocabulary order (the store codecs always are)
        # re-gather as the identity; skipping the fancy-index copy then lets
        # a memory-mapped vector matrix flow through still mapped.
        if not np.array_equal(order, np.arange(len(order))):
            vectors = vectors[order]
        return cls(
            vocab=vocab,
            vectors=vectors,
            metadata=dict(metadata or {}),
        )

    def save(self, path: str | Path) -> Path:
        """Save vectors + vocabulary to a ``.npz`` file."""
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        # Fixed-width unicode (not dtype=object) so load() never needs
        # allow_pickle -- pickled npz fields are an arbitrary-code-execution
        # vector when a file comes from anywhere but this process.
        words = np.array(self.vocab.words, dtype=np.str_)
        counts = self.vocab.counts
        np.savez_compressed(p, vectors=self.vectors, words=words, counts=counts)
        return p if p.suffix == ".npz" else p.with_suffix(p.suffix + ".npz")

    @classmethod
    def load(cls, path: str | Path) -> "Embedding":
        with np.load(Path(path)) as data:
            try:
                words = data["words"]
            except ValueError as error:
                # Files written before the pickle-free format stored words as
                # dtype=object; loading them would require allow_pickle.
                raise ValueError(
                    f"{path} was saved by an older version with pickled word "
                    "arrays; re-save it with the current version (loading "
                    "pickled fields is disabled because it executes "
                    "arbitrary code)"
                ) from error
            return cls.from_word_arrays(words, data["counts"], data["vectors"])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        algo = self.metadata.get("algorithm", "?")
        return f"Embedding(n={self.n_words}, dim={self.dim}, algorithm={algo})"


class EmbeddingAlgorithm(abc.ABC):
    """Common interface of the embedding training algorithms.

    Subclasses implement :meth:`fit`, returning an :class:`Embedding` whose
    vocabulary is the corpus vocabulary (optionally capped).  All algorithms
    accept ``dim`` and ``seed`` so the experiment grid can sweep them.
    """

    name: str = "base"

    def __init__(self, dim: int = 50, *, seed: int = 0) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self.seed = int(seed)

    @abc.abstractmethod
    def fit(self, corpus: Corpus, *, vocab: Vocabulary | None = None) -> Embedding:
        """Train an embedding on ``corpus`` (over ``vocab`` when given)."""

    def _resolve_vocab(self, corpus: Corpus, vocab: Vocabulary | None) -> Vocabulary:
        return vocab if vocab is not None else corpus.build_vocabulary()

    def _metadata(self, corpus: Corpus) -> dict:
        return {
            "algorithm": self.name,
            "corpus": corpus.name,
            "dim": self.dim,
            "seed": self.seed,
            "precision": 32,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(dim={self.dim}, seed={self.seed})"
