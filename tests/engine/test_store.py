"""Tests for the content-addressed artifact store."""

import numpy as np
import pytest

from repro.engine.store import (
    ArtifactStore,
    config_hash,
    configure_default_store,
    default_store,
)


class TestConfigHash:
    def test_stable_across_key_order(self):
        assert config_hash({"a": 1, "b": [2, 3]}) == config_hash({"b": [2, 3], "a": 1})

    def test_different_payloads_differ(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})
        assert config_hash({"a": 1}) != config_hash({"b": 1})

    def test_handles_numpy_and_dataclasses(self):
        from repro.corpus.synthetic import SyntheticCorpusConfig

        cfg = SyntheticCorpusConfig(vocab_size=10)
        key = config_hash({"cfg": cfg, "x": np.float64(1.5), "n": np.int64(3)})
        assert isinstance(key, str) and len(key) == 24
        assert key == config_hash({"cfg": cfg, "x": 1.5, "n": 3})

    def test_store_key_helper(self):
        store = ArtifactStore()
        assert store.key(a=1, b=2) == config_hash({"a": 1, "b": 2})


class TestMemoryTier:
    def test_json_round_trip_preserves_identity(self):
        store = ArtifactStore()
        store.put_json("downstream", "k", {"x": 1.25})
        assert store.get_json("downstream", "k") == {"x": 1.25}
        # The memory tier returns the stored object itself.
        assert store.get_json("downstream", "k") is store.get_json("downstream", "k")

    def test_miss_returns_none_and_counts(self):
        store = ArtifactStore()
        assert store.get_json("downstream", "absent") is None
        assert store.stat("downstream").misses == 1
        assert store.stat("downstream").hits == 0

    def test_hit_and_put_counters(self):
        store = ArtifactStore()
        store.put_json("measures", "k", {"eis": 0.5})
        store.get_json("measures", "k")
        store.get_json("measures", "k")
        stat = store.stat("measures")
        assert (stat.hits, stat.misses, stat.puts) == (2, 0, 1)
        assert stat.lookups == 2

    def test_kinds_are_isolated(self):
        store = ArtifactStore()
        store.put_json("a", "k", 1)
        assert store.get_json("b", "k") is None


class TestDiskTier:
    def test_json_survives_new_store(self, tmp_path):
        ArtifactStore(tmp_path).put_json("downstream", "k", {"acc": 0.75})
        fresh = ArtifactStore(tmp_path)
        assert fresh.get_json("downstream", "k") == {"acc": 0.75}
        assert fresh.stat("downstream").hits == 1

    def test_arrays_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        P = np.arange(12, dtype=np.float64).reshape(4, 3)
        store.put_arrays("decomposition", "k", {"P": P, "S": np.ones(3)})
        loaded = ArtifactStore(tmp_path).get_arrays("decomposition", "k")
        np.testing.assert_array_equal(loaded["P"], P)
        np.testing.assert_array_equal(loaded["S"], np.ones(3))

    def test_embedding_pair_round_trip(self, tmp_path, embedding_pair):
        emb_a, emb_b = embedding_pair
        ArtifactStore(tmp_path).put_embedding_pair("embedding_pair", "k", (emb_a, emb_b))
        loaded_a, loaded_b = ArtifactStore(tmp_path).get_embedding_pair(
            "embedding_pair", "k"
        )
        assert loaded_a.vocab.words == emb_a.vocab.words
        assert loaded_b.vocab.words == emb_b.vocab.words
        np.testing.assert_array_equal(loaded_a.vectors, emb_a.vectors)
        np.testing.assert_array_equal(loaded_b.vectors, emb_b.vectors)
        assert loaded_a.metadata == emb_a.metadata

    def test_float_values_round_trip_exactly(self, tmp_path):
        # Bit-identical warm reruns require exact float round-trips via JSON.
        value = {"disagreement": 1.0 / 3.0, "accuracy_a": 0.1 + 0.2}
        ArtifactStore(tmp_path).put_json("downstream", "k", value)
        assert ArtifactStore(tmp_path).get_json("downstream", "k") == value

    def test_files_live_under_kind_directories(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_json("downstream", "deadbeef", {})
        store.put_arrays("decomposition", "cafe", {"x": np.zeros(2)})
        assert (tmp_path / "downstream" / "deadbeef.json").exists()
        assert (tmp_path / "decomposition" / "cafe.npz").exists()
        # No stray temp files left behind by the atomic writes.
        assert not list(tmp_path.rglob("*.tmp"))


class TestCorruptArtifacts:
    """A torn or garbage payload must degrade to a counted cache miss."""

    def test_corrupt_json_is_a_miss(self, tmp_path):
        ArtifactStore(tmp_path).put_json("downstream", "k", {"acc": 0.5})
        (tmp_path / "downstream" / "k.json").write_bytes(b'{"acc": 0.')
        fresh = ArtifactStore(tmp_path)
        assert fresh.get_json("downstream", "k") is None
        stat = fresh.stat("downstream")
        assert stat.corrupt == 1 and stat.misses == 1 and stat.hits == 0

    def test_truncated_npz_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_arrays("decomposition", "k", {"P": np.eye(3)})
        path = tmp_path / "decomposition" / "k.npz"
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        fresh = ArtifactStore(tmp_path)
        assert fresh.get_arrays("decomposition", "k") is None
        assert fresh.stat("decomposition").corrupt == 1

    def test_corrupt_embedding_pair_is_a_miss(self, tmp_path, embedding_pair):
        store = ArtifactStore(tmp_path)
        store.put_embedding_pair("embedding_pair", "k", embedding_pair)
        (tmp_path / "embedding_pair" / "k.npz").write_bytes(b"not an npz at all")
        fresh = ArtifactStore(tmp_path)
        assert fresh.get_embedding_pair("embedding_pair", "k") is None
        assert fresh.stat("embedding_pair").corrupt == 1

    def test_corrupt_upper_tier_falls_through_to_lower(self, tmp_path):
        from repro.engine.backends import DiskBackend

        upper_dir, lower_dir = tmp_path / "upper", tmp_path / "lower"
        ArtifactStore(lower_dir).put_json("downstream", "k", {"acc": 0.5})
        upper = DiskBackend(upper_dir)
        upper.put("downstream", "k.json", b"garbage")
        store = ArtifactStore(backends=[upper, DiskBackend(lower_dir)])
        # The lower tier's intact copy wins, and repairs the upper tier.
        assert store.get_json("downstream", "k") == {"acc": 0.5}
        assert store.stat("downstream").corrupt == 1
        assert store.stat("downstream").hits == 1
        assert upper.get("downstream", "k.json") != b"garbage"

    def test_rerun_after_corruption_recomputes_and_repairs(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_json("downstream", "k", {"acc": 0.5})
        (tmp_path / "downstream" / "k.json").write_bytes(b"junk")
        fresh = ArtifactStore(tmp_path)
        assert fresh.get_json("downstream", "k") is None      # recompute path
        fresh.put_json("downstream", "k", {"acc": 0.5})       # overwrite repairs
        assert ArtifactStore(tmp_path).get_json("downstream", "k") == {"acc": 0.5}


class TestPickleSafety:
    """Decode paths reachable from the network must never unpickle.

    /artifacts feeds peer-supplied bytes into the npz codecs; ``np.load``
    with ``allow_pickle=True`` would turn any reachable store port into
    arbitrary code execution.  A payload carrying pickled object arrays must
    be rejected as corrupt, never loaded.
    """

    @staticmethod
    def _pickled_npz() -> bytes:
        import io

        buffer = io.BytesIO()
        np.savez(
            buffer,
            vectors_a=np.zeros((1, 1)),
            vectors_b=np.zeros((1, 1)),
            metadata=np.array([{"x": 1}], dtype=object),   # forces pickling
        )
        return buffer.getvalue()

    def test_pair_payloads_contain_no_object_arrays(self, embedding_pair):
        import io

        from repro.engine.codecs import EMBEDDING_PAIR_CODEC

        payload = EMBEDDING_PAIR_CODEC.encode(embedding_pair)
        with np.load(io.BytesIO(payload)) as data:         # allow_pickle=False
            assert data.files
            assert all(data[name].dtype != object for name in data.files)

    def test_embedding_pair_codec_rejects_pickled_payloads(self):
        from repro.engine.codecs import EMBEDDING_PAIR_CODEC

        with pytest.raises(ValueError):
            EMBEDDING_PAIR_CODEC.decode(self._pickled_npz())

    def test_put_bytes_drops_pickled_peer_payload(self):
        store = ArtifactStore()      # memory-only: decodes peer payloads
        store.put_bytes("embedding_pair", "evil.npz", self._pickled_npz())
        assert store.get_bytes("embedding_pair", "evil.npz") is None
        assert store.stat("embedding_pair").corrupt == 1

    def test_pickled_disk_artifact_is_a_counted_miss(self, tmp_path):
        (tmp_path / "embedding_pair").mkdir()
        (tmp_path / "embedding_pair" / "k.npz").write_bytes(self._pickled_npz())
        store = ArtifactStore(tmp_path)
        assert store.get_embedding_pair("embedding_pair", "k") is None
        assert store.stat("embedding_pair").corrupt == 1


class TestByteAccess:
    """The byte-level view the /artifacts peer API is built on."""

    def test_get_bytes_from_disk_tier(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_json("measures", "k", {"eis": 0.5})
        payload = store.get_bytes("measures", "k.json")
        assert payload == (tmp_path / "measures" / "k.json").read_bytes()

    def test_get_bytes_encodes_memory_only_artifacts(self):
        store = ArtifactStore()                      # no byte tiers at all
        store.put_json("measures", "k", {"eis": 0.5})
        payload = store.get_bytes("measures", "k.json")
        assert payload is not None
        import json as json_module

        assert json_module.loads(payload) == {"eis": 0.5}
        # Suffix mismatches never mis-encode: a JSON object is not an npz.
        assert store.get_bytes("measures", "k.npz") is None

    def test_get_bytes_encodes_memory_only_pairs(self, embedding_pair):
        store = ArtifactStore()
        store.put_embedding_pair("embedding_pair", "k", embedding_pair)
        payload = store.get_bytes("embedding_pair", "k.npz")
        from repro.engine.codecs import EMBEDDING_PAIR_CODEC

        dec_a, _ = EMBEDDING_PAIR_CODEC.decode(payload)
        np.testing.assert_array_equal(dec_a.vectors, embedding_pair[0].vectors)

    def test_put_bytes_round_trips_through_typed_get(self, tmp_path):
        source = ArtifactStore()
        source.put_json("measures", "k", {"eis": 0.5})
        payload = source.get_bytes("measures", "k.json")

        target = ArtifactStore(tmp_path)
        target.put_bytes("measures", "k.json", payload)
        assert target.get_json("measures", "k") == {"eis": 0.5}

    def test_byte_api_never_touches_remote_tiers(self, tmp_path):
        # Serving a peer must not fan out to this node's own peers: two
        # symmetrically-configured nodes would otherwise recurse on every
        # miss.  A slow unreachable remote makes the leak observable as time.
        store = ArtifactStore(
            tmp_path, remote_url="http://127.0.0.1:9", remote_timeout=5.0
        )
        import time

        start = time.perf_counter()
        assert store.get_bytes("measures", "absent.json") is None
        assert not store.contains_bytes("measures", "absent.json")
        store.put_bytes("measures", "peer.json", b"{}")
        store.delete_bytes("measures", "peer.json")
        assert time.perf_counter() - start < 1.0, "byte API hit the remote tier"
        remote = store.tiers[-1]
        assert remote.name == "remote" and remote.stats.errors == 0

    def test_byte_api_excludes_remotes_nested_in_sharded_tiers(self):
        from repro.engine.backends import RemoteBackend, ShardedBackend

        sharded = ShardedBackend(
            [RemoteBackend("http://127.0.0.1:9", timeout=5.0)]
        )
        assert sharded.remote_capable
        store = ArtifactStore(backends=[sharded])
        assert store.get_bytes("measures", "absent.json") is None
        assert not store.contains_bytes("measures", "absent.json")
        assert sharded.shards[0].stats.errors == 0, "byte API reached a nested peer"

    def test_contains_bytes_respects_codec_suffix(self):
        # HEAD 200 must imply GET 200: a memory-only JSON artifact does not
        # "exist" under an .npz name.
        store = ArtifactStore()
        store.put_json("measures", "k", {"eis": 0.5})
        assert store.contains_bytes("measures", "k.json")
        assert not store.contains_bytes("measures", "k.npz")

    def test_memory_only_empty_arrays_serve_under_their_npz_name(self):
        # The codec is recorded at put time: by type alone an empty dict is
        # ambiguous (empty JSON object vs empty arrays npz), and the byte
        # view must agree with the name a disk tier would have stored.
        from repro.engine.codecs import ARRAYS_CODEC

        store = ArtifactStore()
        store.put_arrays("decomposition", "k", {})
        assert store.contains_bytes("decomposition", "k.npz")
        assert not store.contains_bytes("decomposition", "k.json")
        payload = store.get_bytes("decomposition", "k.npz")
        assert payload is not None and ARRAYS_CODEC.decode(payload) == {}

        store.put_json("measures", "e", {})
        assert store.contains_bytes("measures", "e.json")
        assert not store.contains_bytes("measures", "e.npz")

    def test_contains_and_delete_bytes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_json("measures", "k", {"eis": 0.5})
        assert store.contains_bytes("measures", "k.json")
        store.delete_bytes("measures", "k.json")
        assert not store.contains_bytes("measures", "k.json")
        assert store.get_json("measures", "k") is None


class TestDefaultStore:
    def test_unconfigured_default_is_memory_only(self):
        store = default_store()
        assert not store.persistent

    def test_configured_default_persists(self, tmp_path):
        configure_default_store(tmp_path)
        try:
            store = default_store()
            assert store.persistent and store.root == tmp_path
        finally:
            configure_default_store(None)
        assert not default_store().persistent

    def test_configured_default_shards_and_remote(self, tmp_path):
        configure_default_store(
            tmp_path, shards=3, remote_url="http://127.0.0.1:1"
        )
        try:
            store = default_store()
            assert [tier.name for tier in store.tiers] == ["sharded", "remote"]
        finally:
            configure_default_store(None)
        assert default_store().tiers == []


class TestAsyncReplication:
    """Opt-in background write-back to remote tiers (cluster worker pushes)."""

    class GatedRemote:
        """Remote-capable backend whose puts wait on an event."""

        def __new__(cls):
            from repro.engine.backends import StoreBackend
            import threading

            class _Gated(StoreBackend):
                name = "gated-remote"
                persistent = True
                remote_capable = True

                def __init__(self):
                    super().__init__()
                    self.release = threading.Event()
                    self.payloads = {}

                def _get(self, kind, name):
                    return self.payloads.get((kind, name))

                def _put(self, kind, name, payload):
                    assert self.release.wait(timeout=30)
                    self.payloads[(kind, name)] = payload

                def _contains(self, kind, name):
                    return (kind, name) in self.payloads

                def _delete(self, kind, name):
                    self.payloads.pop((kind, name), None)

            return _Gated()

    def test_remote_writes_go_async_and_flush_is_a_barrier(self):
        remote = self.GatedRemote()
        store = ArtifactStore(backends=[remote], async_replication=True)
        store.put_json("measures", "k", {"eis": 0.5})   # returns immediately
        assert remote.payloads == {}
        assert store.flush(timeout=0.05) is False       # still pending
        remote.release.set()
        assert store.flush(timeout=30) is True
        assert ("measures", "k.json") in remote.payloads
        assert store.replication_stats()["written"] == 1

    def test_local_tiers_stay_synchronous(self, tmp_path):
        store = ArtifactStore(tmp_path, async_replication=True)
        store.put_json("measures", "k", {"eis": 0.5})
        # No flush needed: the disk tier was written inline.
        assert (tmp_path / "measures" / "k.json").exists()
        assert store.replication_stats()["submitted"] == 0

    def test_warm_read_back_through_the_remote_tier(self):
        remote = self.GatedRemote()
        remote.release.set()
        writer = ArtifactStore(backends=[remote], async_replication=True)
        writer.put_json("measures", "k", {"eis": 0.25})
        assert writer.flush(timeout=30)
        reader = ArtifactStore(backends=[remote])
        assert reader.get_json("measures", "k") == {"eis": 0.25}

    def test_synchronous_store_flush_is_a_noop(self):
        assert ArtifactStore().flush() is True
        assert ArtifactStore().replication_stats() is None
