"""Ablations called out in DESIGN.md: Procrustes alignment and shared clip thresholds.

Appendix C.2 of the paper reports that aligning the Wiki'18 embedding to the
Wiki'17 embedding before compression reduces instability (especially at high
compression), and that sharing the quantization clipping threshold across the
pair avoids an unnecessary source of instability.  This benchmark measures
both choices directly on the embedding distance measures.
"""

import numpy as np

from repro.compression.uniform_quantization import compress_pair
from repro.embeddings.alignment import align_pair
from repro.measures.knn import KNNDistance
from repro.measures.semantic_displacement import SemanticDisplacement


def test_alignment_and_threshold_ablation(benchmark, pipeline):
    algorithm, dim, seed, bits = "mc", 16, 0, 2

    def build():
        emb_a, emb_b_aligned = pipeline.embedding_pair(algorithm, dim, seed)
        # Re-train the drifted embedding *without* alignment by fitting directly.
        model = pipeline._make_algorithm(algorithm, dim, seed)
        emb_b_raw = model.fit(pipeline.corpus_pair.drifted, vocab=pipeline.vocab)
        rows = []
        for label, emb_b in (("aligned", emb_b_aligned), ("unaligned", emb_b_raw)):
            for shared in (True, False):
                qa, qb = compress_pair(emb_a, emb_b, bits, share_threshold=shared)
                rows.append(
                    {
                        "alignment": label,
                        "shared_clip_threshold": shared,
                        "semantic_displacement": SemanticDisplacement().compute_embeddings(qa, qb).value,
                        "one_minus_knn": KNNDistance(num_queries=200).compute_embeddings(qa, qb).value,
                    }
                )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    for row in rows:
        print("  ", row)
    aligned = [r for r in rows if r["alignment"] == "aligned"]
    unaligned = [r for r in rows if r["alignment"] == "unaligned"]
    # Paper shape: alignment reduces the measured embedding distance.
    assert np.mean([r["semantic_displacement"] for r in aligned]) <= np.mean(
        [r["semantic_displacement"] for r in unaligned]
    ) + 1e-9
