"""Figure 14b (Appendix E.4): fine-tuning the embeddings downstream.

The paper repeats the SST-2 memory sweep while allowing the downstream model
to update ("fine-tune") the embedding table, finding the stability-memory
trend persists (noisier) and that fine-tuning lowers the overall instability.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.experiments.base import ExperimentResult, resolve_engine, resolve_pipeline
from repro.instability.grid import average_over_seeds
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig

__all__ = ["run"]


def run(
    pipeline: InstabilityPipeline | PipelineConfig | None = None,
    *,
    task: str = "sst2",
    algorithms: tuple[str, ...] = ("mc",),
    dimensions: tuple[int, ...] | None = None,
    precisions: tuple[int, ...] = (1, 4, 32),
    n_workers: int | None = None,
) -> ExperimentResult:
    """Compare fixed vs fine-tuned embeddings on the memory sweep."""
    base_pipe = resolve_pipeline(pipeline)
    finetune_config = replace(base_pipe.config, fine_tune_embeddings=True)
    # Share the base pipeline's artifact store so both settings see identical
    # trained pairs (embedding keys don't include the fine-tune flag, while
    # downstream keys do).  A config-reconstructible base regenerates the same
    # corpus deterministically; a custom-corpus base shares its source objects
    # so the store keys line up.
    shared_sources = (
        {}
        if base_pipe.reconstructible
        else {"corpus_pair": base_pipe.corpus_pair, "generator": base_pipe.generator}
    )
    finetune_pipe = InstabilityPipeline(
        finetune_config, store=base_pipe.store, **shared_sources
    )

    rows = []
    for label, pipe in (("fixed", base_pipe), ("fine-tuned", finetune_pipe)):
        records = resolve_engine(pipe, n_workers=n_workers).run(
            algorithms=algorithms,
            tasks=(task,),
            dimensions=dimensions,
            precisions=precisions,
            with_measures=False,
        )
        for r in average_over_seeds(records):
            rows.append(
                {
                    "mode": label,
                    "task": r.task,
                    "algorithm": r.algorithm,
                    "dimension": r.dim,
                    "precision": r.precision,
                    "memory_bits_per_word": r.memory,
                    "disagreement_pct": r.disagreement,
                    "quality": r.mean_accuracy,
                }
            )

    fixed = [r["disagreement_pct"] for r in rows if r["mode"] == "fixed"]
    tuned = [r["disagreement_pct"] for r in rows if r["mode"] == "fine-tuned"]
    summary = {
        "mean_disagreement_fixed": float(np.mean(fixed)) if fixed else 0.0,
        "mean_disagreement_fine_tuned": float(np.mean(tuned)) if tuned else 0.0,
        "fine_tuning_not_more_unstable": bool(
            (not fixed or not tuned) or np.mean(tuned) <= np.mean(fixed) * 1.5
        ),
    }
    return ExperimentResult(name="figure-14b-finetune", rows=rows, summary=summary)
