#!/usr/bin/env python
"""Perf-regression gate: diff a fresh benchmark envelope against a baseline.

Every CLI benchmark writes a ``BENCH_<name>.json`` envelope (see
``write_benchmark_results`` in ``benchmarks/conftest.py``).  This script
compares the *timing leaves* of a freshly produced envelope against a
committed baseline and **fails (exit 1) when any timing regressed by more
than the threshold** (default 25%).

A timing leaf is any numeric value in the ``summary`` or ``rows`` payloads
whose key names a duration: ``seconds``, ``*_s``, ``*_ms`` or ``*_seconds``
(``mean_ms``, ``cold_mean_ms``, ``total_s``, ...).  Rows are addressed by
their ``mode``/``name`` label when they carry one, so reordering rows never
misaligns the diff.  Counters, speedup ratios and everything else are
ignored -- more work per second is not a regression.  Tiny timings are
noise: leaves where *both* sides sit under ``--min-ms`` are skipped, so a
0.4ms -> 0.6ms jitter cannot flap CI.

Usage::

    python benchmarks/compare_bench.py \
        --baseline benchmarks/baselines/BENCH_engine_grid.json \
        --fresh BENCH_engine_grid.json [--threshold 0.25] [--min-ms 20]

Thresholds are deliberately generous: shared CI runners are noisy, and the
gate exists to catch step-function regressions (an accidentally quadratic
loop, a lost cache), not single-digit drift.  ``--threshold`` and
``--min-ms`` can be overridden per invocation (CI reads
``BENCH_REGRESSION_THRESHOLD`` / ``BENCH_MIN_MS`` env vars if set).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

__all__ = ["timing_leaves", "compare", "main"]

#: Key suffixes/names identifying a duration leaf, and their scale to ms.
_SECONDS_KEYS = ("seconds",)
_SECONDS_SUFFIXES = ("_s", "_seconds")
_MS_SUFFIXES = ("_ms",)


def _is_timing_key(key: str) -> float | None:
    """The to-milliseconds scale factor of a timing key, or None."""
    if key in _SECONDS_KEYS or key.endswith(_SECONDS_SUFFIXES):
        return 1000.0
    if key.endswith(_MS_SUFFIXES):
        return 1.0
    return None


def timing_leaves(payload, prefix: str = "") -> dict[str, float]:
    """Flatten every timing leaf of a JSON payload to ``path -> milliseconds``."""
    leaves: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            scale = _is_timing_key(str(key))
            if scale is not None and isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                leaves[path] = float(value) * scale
            else:
                leaves.update(timing_leaves(value, path))
    elif isinstance(payload, list):
        for index, value in enumerate(payload):
            label = None
            if isinstance(value, dict):
                for field in ("mode", "name"):
                    if isinstance(value.get(field), str):
                        label = value[field]
                        break
            segment = f"[{label}]" if label is not None else f"[{index}]"
            leaves.update(timing_leaves(value, f"{prefix}{segment}"))
    return leaves


def compare(
    baseline: dict, fresh: dict, *, threshold: float = 0.25, min_ms: float = 20.0
) -> tuple[list[str], list[str]]:
    """Compare two envelopes; returns (report_lines, regression_lines)."""
    sections = lambda env: {
        "summary": env.get("summary") or {}, "rows": env.get("rows") or []
    }
    base_leaves = timing_leaves(sections(baseline))
    fresh_leaves = timing_leaves(sections(fresh))
    report: list[str] = []
    regressions: list[str] = []
    for path in sorted(base_leaves):
        if path not in fresh_leaves:
            report.append(f"  ~ {path}: in baseline only (skipped)")
            continue
        base_ms, fresh_ms = base_leaves[path], fresh_leaves[path]
        if base_ms < min_ms and fresh_ms < min_ms:
            report.append(
                f"  . {path}: {base_ms:.2f}ms -> {fresh_ms:.2f}ms (under "
                f"{min_ms:.0f}ms floor, skipped)"
            )
            continue
        ratio = fresh_ms / base_ms if base_ms > 0 else float("inf")
        line = f"{path}: {base_ms:.2f}ms -> {fresh_ms:.2f}ms ({ratio:.2f}x baseline)"
        if fresh_ms > base_ms * (1.0 + threshold):
            regressions.append(f"  ! {line}  exceeds +{threshold:.0%}")
            report.append(f"  ! {line}  REGRESSION")
        else:
            report.append(f"  ok {line}")
    for path in sorted(set(fresh_leaves) - set(base_leaves)):
        report.append(f"  + {path}: new timing (no baseline, skipped)")
    return report, regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed BENCH_*.json")
    parser.add_argument("--fresh", required=True, help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("BENCH_REGRESSION_THRESHOLD", "0.25")),
        help="allowed fractional slowdown before failing (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--min-ms",
        type=float,
        default=float(os.environ.get("BENCH_MIN_MS", "20.0")),
        help="skip leaves where both sides are under this many ms (noise floor)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(Path(args.baseline).read_text())
        fresh = json.loads(Path(args.fresh).read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"compare_bench: cannot load envelopes: {error}", file=sys.stderr)
        return 2
    name = fresh.get("benchmark", "?")
    if baseline.get("benchmark") not in (None, name):
        print(
            f"compare_bench: baseline is {baseline.get('benchmark')!r} but fresh "
            f"is {name!r}",
            file=sys.stderr,
        )
        return 2

    report, regressions = compare(
        baseline, fresh, threshold=args.threshold, min_ms=args.min_ms
    )
    print(f"benchmark {name}: baseline {baseline.get('git_rev', '?')[:12]} vs "
          f"fresh {fresh.get('git_rev', '?')[:12]} "
          f"(threshold +{args.threshold:.0%}, floor {args.min_ms:.0f}ms)")
    for line in report:
        print(line)
    if regressions:
        print(f"\n{len(regressions)} timing regression(s) over +{args.threshold:.0%}:")
        for line in regressions:
            print(line)
        return 1
    print("\nno timing regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
