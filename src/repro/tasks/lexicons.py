"""Task lexicons derived from the synthetic corpus topics.

The downstream tasks need label structure that is (a) learnable from the
embedding geometry and (b) consistent between the Corpus'17 and Corpus'18
snapshots.  Both properties follow from anchoring the lexicons to the corpus
generator's latent topics: words boosted by the same topic co-occur and hence
cluster in embedding space, so a classifier over frozen embeddings can learn
"topic 0 words signal the positive class" the same way real sentiment models
learn that distributionally-similar words carry similar sentiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.synthetic import SyntheticCorpusGenerator
from repro.corpus.vocabulary import Vocabulary

__all__ = ["TaskLexicons", "build_task_lexicons"]

#: Entity types used by the NER task (CoNLL-2003 label set).
ENTITY_TYPES = ("PER", "ORG", "LOC", "MISC")


@dataclass
class TaskLexicons:
    """Word lists that define the synthetic downstream tasks.

    Attributes
    ----------
    positive, negative:
        Sentiment-bearing word lists (ids in the task vocabulary).
    entities:
        Mapping from entity type ("PER", ...) to its word list.
    background:
        Words not assigned to any task-specific role.
    vocab:
        The task vocabulary all word lists are expressed in.
    """

    positive: list[str]
    negative: list[str]
    entities: dict[str, list[str]]
    background: list[str]
    vocab: Vocabulary

    def describe(self) -> dict[str, int]:
        """Sizes of each lexicon (useful for logging / sanity checks)."""
        out = {"positive": len(self.positive), "negative": len(self.negative),
               "background": len(self.background)}
        out.update({f"entity_{k}": len(v) for k, v in self.entities.items()})
        return out


def build_task_lexicons(
    generator: SyntheticCorpusGenerator,
    vocab: Vocabulary,
    *,
    positive_topics: tuple[int, ...] = (0,),
    negative_topics: tuple[int, ...] = (1,),
    entity_topics: dict[str, int] | None = None,
    max_words_per_role: int = 120,
) -> TaskLexicons:
    """Derive sentiment and entity lexicons from the generator's topics.

    Parameters
    ----------
    generator:
        The corpus generator whose topic structure defines the lexicons.
    vocab:
        Task vocabulary; words outside it are dropped from the lexicons.
    positive_topics, negative_topics:
        Topics whose boosted words become the positive / negative lexicons.
    entity_topics:
        Mapping from entity type to the topic providing its surface forms;
        defaults to topics 2..5 for PER/ORG/LOC/MISC.
    max_words_per_role:
        Cap on each lexicon size (keeps role words reasonably frequent).
    """
    n_topics = generator.config.n_topics
    if entity_topics is None:
        entity_topics = {
            etype: (2 + i) % n_topics for i, etype in enumerate(ENTITY_TYPES)
        }

    used: set[str] = set()

    def topic_lexicon(topics: tuple[int, ...] | int) -> list[str]:
        if isinstance(topics, int):
            topics = (topics,)
        words: list[str] = []
        for t in topics:
            for w in generator.topic_words(t % n_topics):
                if w in vocab and w not in used:
                    words.append(w)
        # Keep the most frequent ones so they actually appear in the corpus.
        words.sort(key=lambda w: -vocab.count(w))
        chosen = words[:max_words_per_role]
        used.update(chosen)
        return chosen

    positive = topic_lexicon(positive_topics)
    negative = topic_lexicon(negative_topics)
    entities = {etype: topic_lexicon(topic) for etype, topic in entity_topics.items()}
    background = [w for w in vocab.words if w not in used]
    if not positive or not negative:
        raise ValueError(
            "sentiment lexicons are empty; increase the corpus size or topic_word_fraction"
        )
    return TaskLexicons(
        positive=positive,
        negative=negative,
        entities=entities,
        background=background,
        vocab=vocab,
    )
