"""Property-style round-trip tests for uniform quantization.

Pins the analytic guarantees of deterministic uniform quantization:

* compress -> decompress error is bounded by half a quantization step for
  every in-range entry (and by the clipping error outside the range), across
  bit widths;
* ``compress_pair`` with a shared threshold quantizes both members onto the
  *same* grid (the paper's Appendix C.2 behaviour), and the shared threshold
  is exactly the one fitted on the reference embedding;
* ``FULL_PRECISION_BITS`` is an exact no-op.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.uniform_quantization import (
    FULL_PRECISION_BITS,
    UniformQuantizer,
    compress_pair,
    optimal_clip_threshold,
    uniform_quantize,
)
from repro.corpus.vocabulary import Vocabulary
from repro.embeddings.base import Embedding


def toy_embedding(rng: np.random.Generator, n: int = 30, d: int = 6, scale: float = 1.0):
    words = {f"w{i}": n - i for i in range(n)}
    return Embedding(vocab=Vocabulary(words), vectors=scale * rng.standard_normal((n, d)))


@settings(max_examples=25, deadline=None)
@given(
    bits=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=50),
    scale=st.floats(min_value=1e-3, max_value=1e3),
)
def test_property_roundtrip_error_bounded(bits, seed, scale):
    """|q(x) - clip(x)| <= delta/2 for every entry, at every bit width."""
    rng = np.random.default_rng(seed)
    X = scale * rng.standard_normal((40, 5))
    clip = optimal_clip_threshold(X, bits)
    q = uniform_quantize(X, bits, clip=clip)
    delta = 2.0 * clip / max(2**bits - 1, 1)
    clipped = np.clip(X, -clip, clip)
    assert np.all(np.abs(q - clipped) <= delta / 2 + 1e-12 * clip)
    # In-range entries (the vast majority) round-trip within half a step of
    # their original value, not just of their clipped value.
    in_range = np.abs(X) <= clip
    assert np.all(np.abs(q[in_range] - X[in_range]) <= delta / 2 + 1e-12 * clip)


@settings(max_examples=25, deadline=None)
@given(bits=st.integers(min_value=1, max_value=8), seed=st.integers(min_value=0, max_value=50))
def test_property_level_count_and_range(bits, seed):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((30, 4))
    q = uniform_quantize(X, bits)
    assert len(np.unique(q)) <= 2**bits
    assert np.max(np.abs(q)) <= optimal_clip_threshold(X, bits) + 1e-12


@settings(max_examples=15, deadline=None)
@given(bits=st.integers(min_value=1, max_value=6), seed=st.integers(min_value=0, max_value=20))
def test_property_quantization_is_idempotent(bits, seed):
    """Quantizing an already-quantized matrix with the same grid is exact."""
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((25, 4))
    clip = optimal_clip_threshold(X, bits)
    once = uniform_quantize(X, bits, clip=clip)
    twice = uniform_quantize(once, bits, clip=clip)
    np.testing.assert_array_equal(once, twice)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100))
def test_property_full_precision_is_exact_noop(seed):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((20, 5))
    np.testing.assert_array_equal(uniform_quantize(X, FULL_PRECISION_BITS), X)
    np.testing.assert_array_equal(uniform_quantize(X, FULL_PRECISION_BITS + 32), X)


class TestSharedThresholdSymmetry:
    def test_shared_threshold_is_the_reference_fit(self, rng):
        """compress_pair's shared grid is exactly the quantizer fit on ``reference``."""
        bits = 3
        ref = toy_embedding(rng)
        other = toy_embedding(rng, scale=2.0)
        ref_q, other_q = compress_pair(ref, other, bits, share_threshold=True)
        quantizer = UniformQuantizer(bits=bits).fit(ref.vectors)
        np.testing.assert_array_equal(ref_q.vectors, quantizer.transform(ref.vectors))
        np.testing.assert_array_equal(other_q.vectors, quantizer.transform(other.vectors))

    def test_shared_grid_alignment(self, rng):
        """Both members land on one common lattice when the threshold is shared."""
        bits = 2
        ref = toy_embedding(rng)
        other = toy_embedding(rng, scale=0.5)
        ref_q, other_q = compress_pair(ref, other, bits, share_threshold=True)
        levels = np.unique(np.concatenate([ref_q.vectors.ravel(), other_q.vectors.ravel()]))
        assert len(levels) <= 2**bits

    def test_unshared_thresholds_use_own_grids(self, rng):
        bits = 2
        ref = toy_embedding(rng)
        other = toy_embedding(rng, scale=5.0)
        _, other_shared = compress_pair(ref, other, bits, share_threshold=True)
        _, other_own = compress_pair(ref, other, bits, share_threshold=False)
        own_clip = optimal_clip_threshold(other.vectors, bits)
        np.testing.assert_array_equal(
            other_own.vectors, uniform_quantize(other.vectors, bits, clip=own_clip)
        )
        # With a 10x scale mismatch the grids must actually differ.
        assert not np.array_equal(other_shared.vectors, other_own.vectors)

    def test_swapping_the_pair_swaps_the_fitted_threshold(self, rng):
        bits = 3
        a = toy_embedding(rng)
        b = toy_embedding(rng, scale=3.0)
        a_q_ab, _ = compress_pair(a, b, bits, share_threshold=True)
        b_q_ba, _ = compress_pair(b, a, bits, share_threshold=True)
        clip_a = optimal_clip_threshold(a.vectors, bits)
        clip_b = optimal_clip_threshold(b.vectors, bits)
        np.testing.assert_array_equal(
            a_q_ab.vectors, uniform_quantize(a.vectors, bits, clip=clip_a)
        )
        np.testing.assert_array_equal(
            b_q_ba.vectors, uniform_quantize(b.vectors, bits, clip=clip_b)
        )


class TestFullPrecisionPair:
    def test_compress_pair_at_full_precision_is_exact(self, rng):
        ref = toy_embedding(rng)
        other = toy_embedding(rng)
        ref_q, other_q = compress_pair(ref, other, FULL_PRECISION_BITS)
        np.testing.assert_array_equal(ref_q.vectors, ref.vectors)
        np.testing.assert_array_equal(other_q.vectors, other.vectors)
        assert ref_q.metadata["precision"] == FULL_PRECISION_BITS

    def test_metadata_records_precision(self, rng):
        ref = toy_embedding(rng)
        other = toy_embedding(rng)
        ref_q, other_q = compress_pair(ref, other, 4)
        assert ref_q.metadata["precision"] == 4
        assert other_q.metadata["precision"] == 4
