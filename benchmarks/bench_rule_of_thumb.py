"""Section 3.3 rule of thumb: linear-log fits for memory, dimension and precision."""

from repro.experiments import fig2_memory


def test_rule_of_thumb(benchmark, grid_records):
    summary = benchmark.pedantic(
        lambda: fig2_memory.rule_of_thumb(grid_records), rounds=1, iterations=1
    )
    print()
    for key, value in summary.items():
        print(f"  {key}: {value}")
    # Both individual trends should also have positive slopes (more memory,
    # whether via dimension or precision, means more stability).
    assert summary["memory_slope_pct_per_doubling"] > 0
    assert summary["n_observations"] == len(grid_records)
