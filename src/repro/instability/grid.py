"""Dimension-precision grid runner: the data behind Figures 1-2 and Tables 1-3.

A :class:`GridRecord` is one fully-evaluated grid point: an (algorithm, task,
dimension, precision, seed) combination with its downstream disagreement, the
downstream quality of both models, and (optionally) the values of every
embedding distance measure on the same embedding pair.  The analysis, selection
and reporting modules all consume lists of these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.memory import bits_per_word
from repro.instability.pipeline import InstabilityPipeline
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["GridRecord", "GridRunner", "records_to_rows", "average_over_seeds"]


@dataclass(frozen=True)
class GridRecord:
    """One evaluated (algorithm, task, dimension, precision, seed) grid point."""

    algorithm: str
    task: str
    dim: int
    precision: int
    seed: int
    disagreement: float
    accuracy_a: float
    accuracy_b: float
    measures: dict[str, float] = field(default_factory=dict)

    @property
    def memory(self) -> int:
        """Bits per word of the compressed embedding."""
        return bits_per_word(self.dim, self.precision)

    @property
    def mean_accuracy(self) -> float:
        return 0.5 * (self.accuracy_a + self.accuracy_b)

    @classmethod
    def from_row(cls, row: dict) -> "GridRecord":
        """Rebuild a record from its :meth:`to_row` dictionary.

        The inverse of :meth:`to_row` up to the derived ``memory`` field (it
        is recomputed from dim and precision).  Records survive a JSON round
        trip bit-identically -- ``json`` serialises floats via ``repr`` -- so
        the cluster's workers can ship records to the coordinator as plain
        rows and the reassembled stream still compares equal to a local run.
        """
        prefix = "measure_"
        return cls(
            algorithm=str(row["algorithm"]),
            task=str(row["task"]),
            dim=int(row["dim"]),
            precision=int(row["precision"]),
            seed=int(row["seed"]),
            disagreement=float(row["disagreement"]),
            accuracy_a=float(row["accuracy_a"]),
            accuracy_b=float(row["accuracy_b"]),
            measures={
                key[len(prefix):]: float(value)
                for key, value in row.items()
                if key.startswith(prefix)
            },
        )

    def to_row(self) -> dict:
        row = {
            "algorithm": self.algorithm,
            "task": self.task,
            "dim": self.dim,
            "precision": self.precision,
            "seed": self.seed,
            "memory": self.memory,
            "disagreement": self.disagreement,
            "accuracy_a": self.accuracy_a,
            "accuracy_b": self.accuracy_b,
        }
        row.update({f"measure_{k}": v for k, v in self.measures.items()})
        return row


def records_to_rows(records: list[GridRecord]) -> list[dict]:
    """Flatten records into plain dictionaries (for CSV/JSON export)."""
    return [r.to_row() for r in records]


def average_over_seeds(records: list[GridRecord]) -> list[GridRecord]:
    """Average disagreement/accuracy/measures over seeds for identical settings."""
    keyed: dict[tuple, list[GridRecord]] = {}
    for rec in records:
        keyed.setdefault((rec.algorithm, rec.task, rec.dim, rec.precision), []).append(rec)
    averaged = []
    for (algorithm, task, dim, precision), group in sorted(keyed.items()):
        measures: dict[str, float] = {}
        for name in group[0].measures:
            measures[name] = float(np.mean([g.measures.get(name, np.nan) for g in group]))
        averaged.append(
            GridRecord(
                algorithm=algorithm,
                task=task,
                dim=dim,
                precision=precision,
                seed=-1,
                disagreement=float(np.mean([g.disagreement for g in group])),
                accuracy_a=float(np.mean([g.accuracy_a for g in group])),
                accuracy_b=float(np.mean([g.accuracy_b for g in group])),
                measures=measures,
            )
        )
    return averaged


class GridRunner:
    """Sweep the dimension-precision grid of an :class:`InstabilityPipeline`.

    A thin compatibility facade over :class:`repro.engine.scheduler.GridEngine`:
    records come back in the same axis-product order as the original serial
    loop, but cells are scheduled by shared ancestry, every artifact goes
    through the pipeline's store, and ``n_workers`` fans independent cell
    groups out over processes.
    """

    def __init__(self, pipeline: InstabilityPipeline, *, n_workers: int = 0) -> None:
        self.pipeline = pipeline
        self.n_workers = int(n_workers)

    def run(
        self,
        *,
        algorithms: tuple[str, ...] | None = None,
        tasks: tuple[str, ...] | None = None,
        dimensions: tuple[int, ...] | None = None,
        precisions: tuple[int, ...] | None = None,
        seeds: tuple[int, ...] | None = None,
        with_measures: bool = False,
        model_type: str = "bow",
        n_workers: int | None = None,
    ) -> list[GridRecord]:
        """Evaluate every combination and return the grid records.

        Any axis left as ``None`` defaults to the pipeline configuration.
        """
        from repro.engine.scheduler import GridEngine

        engine = GridEngine(self.pipeline, n_workers=self.n_workers)
        return engine.run(
            algorithms=algorithms,
            tasks=tasks,
            dimensions=dimensions,
            precisions=precisions,
            seeds=seeds,
            with_measures=with_measures,
            model_type=model_type,
            n_workers=n_workers,
        )

    def run_iter(self, *, ordered: bool = True, **axes):
        """Stream grid records as cells complete (see ``GridEngine.run_iter``)."""
        from repro.engine.scheduler import GridEngine

        engine = GridEngine(self.pipeline, n_workers=self.n_workers)
        return engine.run_iter(ordered=ordered, **axes)
