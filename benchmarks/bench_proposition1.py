"""Proposition 1: Monte-Carlo verification of the eigenspace instability theory."""

from repro.experiments import proposition1


def test_proposition1(benchmark):
    result = benchmark.pedantic(
        lambda: proposition1.run(n_samples=1000), rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    print("summary:", result.summary)
    assert result.summary["exact_vs_efficient_abs_diff"] < 1e-8
    assert result.summary["proposition_holds_within_5pct"]
