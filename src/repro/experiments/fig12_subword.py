"""Figure 12 (Appendix E.1): stability-memory tradeoff for subword embeddings.

The paper repeats the memory sweep with fastText skipgram embeddings and finds
the same overall trend (instability falls as memory grows), albeit noisier.
Here the subword algorithm is :class:`~repro.embeddings.fasttext.SubwordEmbeddingModel`.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, resolve_engine, resolve_pipeline
from repro.instability.grid import average_over_seeds
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig

__all__ = ["run"]


def run(
    pipeline: InstabilityPipeline | PipelineConfig | None = None,
    *,
    tasks: tuple[str, ...] = ("sst2", "conll"),
    dimensions: tuple[int, ...] | None = None,
    precisions: tuple[int, ...] | None = None,
    n_workers: int | None = None,
) -> ExperimentResult:
    """Reproduce the subword-embedding sweep (Figure 12)."""
    pipe = resolve_pipeline(pipeline)
    records = resolve_engine(pipe, n_workers=n_workers).run(
        algorithms=("fasttext",),
        tasks=tasks,
        dimensions=dimensions,
        precisions=precisions,
        with_measures=False,
    )
    averaged = average_over_seeds(records)
    rows = [
        {
            "task": r.task,
            "algorithm": r.algorithm,
            "dimension": r.dim,
            "precision": r.precision,
            "memory_bits_per_word": r.memory,
            "disagreement_pct": r.disagreement,
        }
        for r in sorted(averaged, key=lambda r: (r.task, r.memory))
    ]
    ordered = sorted(rows, key=lambda r: r["memory_bits_per_word"])
    summary = {}
    if len(ordered) >= 2:
        summary = {
            "low_vs_high_memory_disagreement": (
                ordered[0]["disagreement_pct"],
                ordered[-1]["disagreement_pct"],
            ),
            "instability_decreases_with_memory": bool(
                ordered[0]["disagreement_pct"] >= ordered[-1]["disagreement_pct"]
            ),
        }
    return ExperimentResult(name="figure-12-subword", rows=rows, summary=summary)
