"""Tests for the Vocabulary container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.vocabulary import Vocabulary


class TestConstruction:
    def test_frequency_ordering(self):
        vocab = Vocabulary({"rare": 1, "common": 10, "mid": 5})
        assert vocab.words == ["common", "mid", "rare"]
        assert vocab["common"] == 0

    def test_ties_break_lexicographically(self):
        vocab = Vocabulary({"b": 2, "a": 2})
        assert vocab.words == ["a", "b"]

    def test_min_count_filters(self):
        vocab = Vocabulary({"a": 5, "b": 1}, min_count=2)
        assert "b" not in vocab
        assert len(vocab) == 1

    def test_from_documents(self):
        vocab = Vocabulary.from_documents([["a", "b", "a"], ["b", "c"]])
        assert vocab.count("a") == 2
        assert vocab.count("b") == 2
        assert vocab.count("c") == 1

    def test_from_documents_max_size(self):
        vocab = Vocabulary.from_documents([["a", "a", "b", "c"]], max_size=2)
        assert len(vocab) == 2
        assert "a" in vocab


class TestLookups:
    def test_round_trip(self):
        vocab = Vocabulary({"x": 3, "y": 2, "z": 1})
        for word in vocab.words:
            assert vocab.id_to_word(vocab[word]) == word

    def test_word_to_id_default(self):
        vocab = Vocabulary({"x": 1})
        assert vocab.word_to_id("missing") is None
        assert vocab.word_to_id("missing", -1) == -1

    def test_counts_aligned_with_ids(self):
        vocab = Vocabulary({"x": 3, "y": 7})
        np.testing.assert_array_equal(vocab.counts, [7, 3])
        assert vocab.total_count == 10

    def test_most_common(self):
        vocab = Vocabulary({"x": 3, "y": 7, "z": 1})
        assert vocab.most_common(2) == [("y", 7), ("x", 3)]


class TestEncode:
    def test_encode_drops_unknown(self):
        vocab = Vocabulary({"a": 2, "b": 1})
        np.testing.assert_array_equal(vocab.encode(["a", "zzz", "b"]), [0, 1])

    def test_encode_keep_unknown(self):
        vocab = Vocabulary({"a": 2, "b": 1})
        np.testing.assert_array_equal(
            vocab.encode(["a", "zzz", "b"], drop_unknown=False), [0, -1, 1]
        )

    def test_decode(self):
        vocab = Vocabulary({"a": 2, "b": 1})
        assert vocab.decode([1, 0]) == ["b", "a"]


class TestTruncateAndIntersect:
    def test_truncate_keeps_most_frequent(self):
        vocab = Vocabulary({"a": 5, "b": 3, "c": 1})
        small = vocab.truncate(2)
        assert small.words == ["a", "b"]

    def test_truncate_invalid(self):
        with pytest.raises(ValueError):
            Vocabulary({"a": 1}).truncate(0)

    def test_intersect_order_follows_self(self):
        a = Vocabulary({"x": 5, "y": 3, "z": 1})
        b = Vocabulary({"y": 9, "z": 2})
        assert a.intersect(b) == ["y", "z"]

    def test_equality(self):
        assert Vocabulary({"a": 1, "b": 2}) == Vocabulary({"a": 5, "b": 9})
        assert Vocabulary({"a": 1}) != Vocabulary({"b": 1})


class TestUpdate:
    """Incremental growth with deterministic, remappable id re-derivation
    (the online monitor's ingestion path)."""

    def test_update_grows_and_reorders(self):
        vocab = Vocabulary(min_count=1)
        vocab.update(["b", "a", "b"])
        assert vocab.words == ["b", "a"]
        vocab.update(["a", "a", "c"])
        # Counts now a=3, b=2, c=1: ids re-derive from the new ordering.
        assert vocab.words == ["a", "b", "c"]

    def test_update_equals_from_documents(self):
        batches = [["a", "b", "a"], ["b", "c"], ["c", "c", "a"]]
        incremental = Vocabulary(min_count=1)
        for batch in batches:
            incremental.update(batch)
        assert incremental.words == Vocabulary.from_documents(batches).words

    def test_remap_table_is_stable_and_injective(self):
        # The old->new id table the monitor derives after an update must be a
        # deterministic injection: every pre-update word keeps exactly one id
        # in the grown vocabulary, identically on every run.
        vocab = Vocabulary(min_count=1)
        vocab.update("d a b a c b a".split())
        old_words = vocab.words

        def grow():
            v = Vocabulary(min_count=1)
            v.update("d a b a c b a".split())
            v.update("e c c c b e".split())
            return [v[word] for word in old_words]

        table = grow()
        assert table == grow()                      # deterministic
        assert len(set(table)) == len(table)        # injective
        # And the table really tracks the words across the re-ordering.
        v = Vocabulary(min_count=1)
        v.update("d a b a c b a".split())
        v.update("e c c c b e".split())
        for word, new_id in zip(old_words, table):
            assert v.id_to_word(new_id) == word

    def test_encode_then_remap_equals_encode_in_final_vocab(self):
        # min_count=1 ingestion invariant: ids encoded against the old
        # vocabulary, pushed through the remap table, equal ids encoded
        # against the final vocabulary directly.
        doc = "b a c a b".split()
        vocab = Vocabulary(min_count=1)
        vocab.update(doc)
        old_words = vocab.words
        encoded_old = vocab.encode(doc)
        vocab.update("d d d a".split())
        table = np.array([vocab[word] for word in old_words])
        np.testing.assert_array_equal(table[encoded_old], vocab.encode(doc))


@settings(max_examples=30, deadline=None)
@given(st.dictionaries(st.text(alphabet="abcdefg", min_size=1, max_size=4),
                       st.integers(min_value=1, max_value=50), min_size=1, max_size=20))
def test_property_id_roundtrip_and_monotone_counts(counts):
    """Ids are a bijection onto words and ordered by non-increasing count."""
    vocab = Vocabulary(counts)
    assert len(vocab) == len(counts)
    for word in counts:
        assert vocab.id_to_word(vocab[word]) == word
    arr = vocab.counts
    assert all(arr[i] >= arr[i + 1] for i in range(len(arr) - 1))
