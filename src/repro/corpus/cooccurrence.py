"""Co-occurrence statistics and the PPMI transform.

GloVe and matrix completion both factor a co-occurrence matrix built from the
corpus with a symmetric context window (the paper uses window size 15).  The
matrix-completion algorithm factors the *positive pointwise mutual
information* (PPMI) matrix rather than the raw counts (Bullinaria & Levy,
2007), so :func:`ppmi_matrix` is provided as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.corpus.vocabulary import Vocabulary

__all__ = ["CooccurrenceMatrix", "build_cooccurrence", "ppmi_matrix"]


@dataclass
class CooccurrenceMatrix:
    """Sparse symmetric word-word co-occurrence counts.

    Attributes
    ----------
    matrix:
        ``scipy.sparse.csr_matrix`` of shape ``(n, n)`` with (possibly
        distance-weighted) co-occurrence counts.
    vocab:
        The vocabulary defining row/column order.
    window_size:
        The symmetric context window used to build the matrix.
    distance_weighting:
        Whether counts were weighted by ``1/distance`` (GloVe convention).
    """

    matrix: sp.csr_matrix
    vocab: Vocabulary
    window_size: int
    distance_weighting: bool

    @property
    def shape(self) -> tuple[int, int]:
        return self.matrix.shape

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    def row_sums(self) -> np.ndarray:
        return np.asarray(self.matrix.sum(axis=1)).ravel()

    def to_dense(self) -> np.ndarray:
        return self.matrix.toarray()

    def ppmi(self, *, shift: float = 0.0) -> sp.csr_matrix:
        """Positive PMI transform of the counts (see :func:`ppmi_matrix`)."""
        return ppmi_matrix(self.matrix, shift=shift)


def build_cooccurrence(
    documents: Iterable[Sequence[int] | np.ndarray],
    vocab_size: int | Vocabulary,
    *,
    window_size: int = 8,
    distance_weighting: bool = True,
    symmetric: bool = True,
) -> sp.csr_matrix:
    """Build a sparse co-occurrence matrix from id-encoded documents.

    Parameters
    ----------
    documents:
        Iterable of documents, each a sequence of integer word ids already
        encoded in the target vocabulary (negative ids are skipped).
    vocab_size:
        Vocabulary size, or the :class:`Vocabulary` itself.
    window_size:
        Symmetric window radius.
    distance_weighting:
        Weight a pair at distance ``d`` by ``1/d`` (GloVe style) instead of 1.
    symmetric:
        Accumulate counts for both (word, context) and (context, word).

    Returns
    -------
    scipy.sparse.csr_matrix
        ``(n, n)`` float64 co-occurrence matrix.
    """
    n = len(vocab_size) if isinstance(vocab_size, Vocabulary) else int(vocab_size)
    if n <= 0:
        raise ValueError("vocab_size must be positive")
    if window_size < 1:
        raise ValueError("window_size must be >= 1")

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []

    for doc in documents:
        ids = np.asarray(doc, dtype=np.int64)
        ids = ids[(ids >= 0) & (ids < n)]
        length = len(ids)
        if length < 2:
            continue
        for offset in range(1, min(window_size, length - 1) + 1):
            left = ids[:-offset]
            right = ids[offset:]
            weight = (1.0 / offset) if distance_weighting else 1.0
            w = np.full(len(left), weight, dtype=np.float64)
            rows.append(left)
            cols.append(right)
            vals.append(w)
            if symmetric:
                rows.append(right)
                cols.append(left)
                vals.append(w)

    if not rows:
        return sp.csr_matrix((n, n), dtype=np.float64)

    row_idx = np.concatenate(rows)
    col_idx = np.concatenate(cols)
    data = np.concatenate(vals)
    mat = sp.coo_matrix((data, (row_idx, col_idx)), shape=(n, n), dtype=np.float64)
    return mat.tocsr()


def ppmi_matrix(counts: sp.spmatrix | np.ndarray, *, shift: float = 0.0) -> sp.csr_matrix:
    """Positive pointwise mutual information of a co-occurrence matrix.

    ``PPMI[i, j] = max(0, log(P(i, j) / (P(i) P(j))) - shift)`` computed only
    on the non-zero entries of ``counts`` (zero co-occurrences stay zero, which
    is what makes matrix *completion* rather than factorization meaningful).

    Parameters
    ----------
    counts:
        Sparse or dense non-negative co-occurrence counts.
    shift:
        Optional shift (``log k`` for the shifted-PPMI variant).
    """
    mat = sp.coo_matrix(counts, dtype=np.float64)
    if (mat.data < 0).any():
        raise ValueError("co-occurrence counts must be non-negative")
    total = mat.data.sum()
    if total <= 0:
        return sp.csr_matrix(mat.shape, dtype=np.float64)

    csr = mat.tocsr()
    row_sums = np.asarray(csr.sum(axis=1)).ravel()
    col_sums = np.asarray(csr.sum(axis=0)).ravel()

    coo = csr.tocoo()
    with np.errstate(divide="ignore"):
        pmi = np.log(coo.data * total) - np.log(row_sums[coo.row] * col_sums[coo.col])
    pmi -= shift
    positive = pmi > 0
    result = sp.coo_matrix(
        (pmi[positive], (coo.row[positive], coo.col[positive])),
        shape=csr.shape,
        dtype=np.float64,
    )
    return result.tocsr()
