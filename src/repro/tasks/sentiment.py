"""Synthetic binary sentiment analysis datasets (SST-2 / MR / Subj / MPQA analogues).

Each dataset pairs a label with a short "sentence": a mixture of
sentiment-bearing words from the label's lexicon and background words, plus
label noise.  The four named configurations differ in size, sentence length,
lexicon density, and noise so they span the same easy-to-hard range the
paper's four real datasets do (Subj is the easiest / most stable task in the
paper, MR the noisiest).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.vocabulary import Vocabulary
from repro.tasks.datasets import TextClassificationDataset
from repro.tasks.lexicons import TaskLexicons
from repro.utils.rng import check_random_state
from repro.utils.validation import check_probability

__all__ = ["SentimentTaskConfig", "SENTIMENT_TASKS", "generate_sentiment_dataset"]


@dataclass(frozen=True)
class SentimentTaskConfig:
    """Generation parameters of one synthetic sentiment dataset.

    Attributes
    ----------
    name:
        Task name (mirrors the paper's dataset names).
    n_examples:
        Number of labelled sentences.
    sentence_length:
        Tokens per sentence.
    lexicon_fraction:
        Fraction of tokens drawn from the label's sentiment lexicon (the rest
        are background words); lower values make the task harder/noisier.
    label_noise:
        Probability of flipping the label after generating the sentence.
    """

    name: str
    n_examples: int = 600
    sentence_length: int = 14
    lexicon_fraction: float = 0.5
    label_noise: float = 0.05

    def __post_init__(self) -> None:
        if self.n_examples <= 0 or self.sentence_length <= 0:
            raise ValueError("n_examples and sentence_length must be positive")
        check_probability(self.lexicon_fraction, name="lexicon_fraction")
        check_probability(self.label_noise, name="label_noise")


#: The four sentiment tasks of the paper, ordered roughly from most stable
#: (subj) to least stable (mr) to mirror the instability spread in the paper.
SENTIMENT_TASKS: dict[str, SentimentTaskConfig] = {
    "sst2": SentimentTaskConfig("sst2", n_examples=700, sentence_length=14,
                                lexicon_fraction=0.40, label_noise=0.08),
    "subj": SentimentTaskConfig("subj", n_examples=800, sentence_length=16,
                                lexicon_fraction=0.60, label_noise=0.02),
    "mr": SentimentTaskConfig("mr", n_examples=600, sentence_length=12,
                              lexicon_fraction=0.30, label_noise=0.12),
    "mpqa": SentimentTaskConfig("mpqa", n_examples=700, sentence_length=8,
                                lexicon_fraction=0.45, label_noise=0.06),
}


def generate_sentiment_dataset(
    config: SentimentTaskConfig | str,
    lexicons: TaskLexicons,
    *,
    seed: int = 0,
    vocab: Vocabulary | None = None,
) -> TextClassificationDataset:
    """Generate a binary sentiment dataset from the task lexicons.

    Parameters
    ----------
    config:
        A :class:`SentimentTaskConfig` or the name of one of the predefined
        tasks ("sst2", "mr", "subj", "mpqa").
    lexicons:
        Task lexicons built with :func:`repro.tasks.lexicons.build_task_lexicons`.
    seed:
        Dataset sampling seed.  The *dataset* is shared by both members of an
        embedding pair (only the embeddings change), so callers use one seed
        per experimental seed.
    vocab:
        Vocabulary for the returned dataset (defaults to ``lexicons.vocab``).
    """
    if isinstance(config, str):
        if config not in SENTIMENT_TASKS:
            raise KeyError(f"unknown sentiment task {config!r}; known: {sorted(SENTIMENT_TASKS)}")
        config = SENTIMENT_TASKS[config]
    vocab = vocab or lexicons.vocab
    rng = check_random_state(seed)

    pos_ids = np.asarray([vocab[w] for w in lexicons.positive if w in vocab], dtype=np.int64)
    neg_ids = np.asarray([vocab[w] for w in lexicons.negative if w in vocab], dtype=np.int64)
    bg_ids = np.asarray([vocab[w] for w in lexicons.background if w in vocab], dtype=np.int64)
    if len(pos_ids) == 0 or len(neg_ids) == 0:
        raise ValueError("sentiment lexicons do not overlap the vocabulary")
    if len(bg_ids) == 0:
        bg_ids = np.concatenate([pos_ids, neg_ids])

    # Sample background words proportionally to corpus frequency so sentences
    # look like the corpus the embeddings were trained on.
    bg_counts = np.asarray([vocab.count(vocab.id_to_word(int(i))) for i in bg_ids], dtype=np.float64)
    bg_probs = bg_counts / bg_counts.sum() if bg_counts.sum() > 0 else None

    documents: list[np.ndarray] = []
    labels = np.zeros(config.n_examples, dtype=np.int64)
    n_lex = max(1, int(round(config.lexicon_fraction * config.sentence_length)))
    n_bg = config.sentence_length - n_lex

    for i in range(config.n_examples):
        label = int(rng.random() < 0.5)
        lex_pool = pos_ids if label == 1 else neg_ids
        lex_words = rng.choice(lex_pool, size=n_lex, replace=True)
        bg_words = (
            rng.choice(bg_ids, size=n_bg, replace=True, p=bg_probs)
            if n_bg > 0
            else np.empty(0, dtype=np.int64)
        )
        sentence = np.concatenate([lex_words, bg_words])
        rng.shuffle(sentence)
        documents.append(sentence.astype(np.int64))
        if rng.random() < config.label_noise:
            label = 1 - label
        labels[i] = label

    return TextClassificationDataset(
        documents=documents,
        labels=labels,
        vocab=vocab,
        name=config.name,
        num_classes=2,
    )
