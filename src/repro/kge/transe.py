"""TransE knowledge graph embeddings (Bordes et al., 2013).

TransE embeds entities and relations in the same space and scores a triplet
``(h, r, t)`` by the distance ``d(e_h + r_r, e_t)``; training minimises a
margin ranking loss between observed triplets and negatively-sampled corrupted
triplets.  Following the paper (and the original TransE recipe) we use the L1
distance, corrupt heads or tails uniformly, renormalise entity embeddings to
the unit ball every epoch, and train with mini-batch SGD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression.uniform_quantization import FULL_PRECISION_BITS, uniform_quantize
from repro.kge.graph import KnowledgeGraph
from repro.utils.logging import get_logger
from repro.utils.rng import check_random_state

logger = get_logger(__name__)

__all__ = ["KGEmbedding", "TransEModel", "quantize_kg_embedding"]


@dataclass
class KGEmbedding:
    """Entity and relation embeddings produced by a KGE algorithm."""

    entities: np.ndarray
    relations: np.ndarray
    metadata: dict

    @property
    def dim(self) -> int:
        return int(self.entities.shape[1])

    def score(self, triplets: np.ndarray, *, norm: int = 1) -> np.ndarray:
        """Distance ``d(e_h + r_r, e_t)`` per triplet (lower = more plausible)."""
        triplets = np.asarray(triplets, dtype=np.int64)
        diff = (
            self.entities[triplets[:, 0]]
            + self.relations[triplets[:, 1]]
            - self.entities[triplets[:, 2]]
        )
        if norm == 1:
            return np.abs(diff).sum(axis=1)
        return np.sqrt((diff**2).sum(axis=1))


def quantize_kg_embedding(embedding: KGEmbedding, bits: int) -> KGEmbedding:
    """Uniformly quantize both the entity and relation embeddings."""
    if bits >= FULL_PRECISION_BITS:
        return embedding
    return KGEmbedding(
        entities=uniform_quantize(embedding.entities, bits),
        relations=uniform_quantize(embedding.relations, bits),
        metadata={**embedding.metadata, "precision": int(bits)},
    )


class TransEModel:
    """TransE trained with mini-batch SGD and margin ranking loss.

    Parameters
    ----------
    dim:
        Embedding dimension (shared by entities and relations).
    margin:
        Margin ``gamma`` of the ranking loss (paper: 1).
    learning_rate:
        SGD step size.
    epochs:
        Training epochs over the training triplets.
    n_batches:
        Number of mini-batches per epoch (paper: 100).
    norm:
        Distance norm (1 = L1 as in the paper, 2 = L2).
    negative_rate:
        Negative samples per positive triplet.
    seed:
        Initialisation and sampling seed.
    """

    name = "transe"

    def __init__(
        self,
        dim: int = 20,
        *,
        margin: float = 1.0,
        learning_rate: float = 0.01,
        epochs: int = 50,
        n_batches: int = 20,
        norm: int = 1,
        negative_rate: int = 1,
        seed: int = 0,
    ) -> None:
        if dim <= 0 or epochs <= 0 or n_batches <= 0:
            raise ValueError("dim, epochs and n_batches must be positive")
        if norm not in (1, 2):
            raise ValueError("norm must be 1 or 2")
        self.dim = int(dim)
        self.margin = float(margin)
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.n_batches = int(n_batches)
        self.norm = int(norm)
        self.negative_rate = int(negative_rate)
        self.seed = int(seed)

    # -- training -------------------------------------------------------------

    def fit(self, kg: KnowledgeGraph) -> KGEmbedding:
        """Train on ``kg.train`` and return the embeddings."""
        rng = check_random_state(self.seed)
        bound = 6.0 / np.sqrt(self.dim)
        entities = rng.uniform(-bound, bound, size=(kg.n_entities, self.dim))
        relations = rng.uniform(-bound, bound, size=(kg.n_relations, self.dim))
        relations /= np.maximum(np.linalg.norm(relations, axis=1, keepdims=True), 1e-12)

        triplets = kg.train
        n_train = len(triplets)
        if n_train == 0:
            raise ValueError("knowledge graph has no training triplets")
        batch_size = max(1, n_train // self.n_batches)

        for _epoch in range(self.epochs):
            # Renormalise entities to the unit ball (TransE recipe).
            norms = np.linalg.norm(entities, axis=1, keepdims=True)
            entities /= np.maximum(norms, 1.0)

            order = rng.permutation(n_train)
            for start in range(0, n_train, batch_size):
                batch = triplets[order[start : start + batch_size]]
                batch = np.repeat(batch, self.negative_rate, axis=0)
                B = len(batch)

                # Corrupt head or tail uniformly at random.
                corrupted = batch.copy()
                corrupt_tail = rng.random(B) < 0.5
                random_entities = rng.integers(kg.n_entities, size=B)
                corrupted[corrupt_tail, 2] = random_entities[corrupt_tail]
                corrupted[~corrupt_tail, 0] = random_entities[~corrupt_tail]

                self._sgd_step(entities, relations, batch, corrupted)

        return KGEmbedding(
            entities=entities,
            relations=relations,
            metadata={
                "algorithm": self.name,
                "dim": self.dim,
                "seed": self.seed,
                "graph": kg.name,
                "precision": 32,
            },
        )

    def _sgd_step(
        self,
        entities: np.ndarray,
        relations: np.ndarray,
        positives: np.ndarray,
        negatives: np.ndarray,
    ) -> None:
        """One margin-ranking SGD update on a batch of (positive, negative) pairs."""
        def diff_of(batch: np.ndarray) -> np.ndarray:
            return (
                entities[batch[:, 0]] + relations[batch[:, 1]] - entities[batch[:, 2]]
            )

        pos_diff = diff_of(positives)
        neg_diff = diff_of(negatives)
        if self.norm == 1:
            pos_dist = np.abs(pos_diff).sum(axis=1)
            neg_dist = np.abs(neg_diff).sum(axis=1)
        else:
            pos_dist = np.sqrt((pos_diff**2).sum(axis=1))
            neg_dist = np.sqrt((neg_diff**2).sum(axis=1))

        active = (self.margin + pos_dist - neg_dist) > 0
        if not np.any(active):
            return
        pos, neg = positives[active], negatives[active]
        pos_diff, neg_diff = pos_diff[active], neg_diff[active]

        if self.norm == 1:
            pos_grad = np.sign(pos_diff)
            neg_grad = np.sign(neg_diff)
        else:
            pos_grad = pos_diff / np.maximum(
                np.linalg.norm(pos_diff, axis=1, keepdims=True), 1e-12
            )
            neg_grad = neg_diff / np.maximum(
                np.linalg.norm(neg_diff, axis=1, keepdims=True), 1e-12
            )

        lr = self.learning_rate / max(len(pos), 1)
        # Positive triplet: decrease d(h + r, t).
        np.add.at(entities, pos[:, 0], -lr * pos_grad)
        np.add.at(relations, pos[:, 1], -lr * pos_grad)
        np.add.at(entities, pos[:, 2], lr * pos_grad)
        # Negative triplet: increase d(h' + r, t').
        np.add.at(entities, neg[:, 0], lr * neg_grad)
        np.add.at(relations, neg[:, 1], lr * neg_grad)
        np.add.at(entities, neg[:, 2], -lr * neg_grad)
