"""Figure 13: CNN sentence classifier and BiLSTM-CRF tagger downstream models."""

from repro.experiments import fig13_complex_models


def test_fig13_complex_models(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: fig13_complex_models.run(
            pipeline, dimensions=(8, 32), precisions=(1, 32), include_crf=True
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())
    print("summary:", result.summary)
    assert len(result.rows) == 8
    assert all(0.0 <= r["disagreement_pct"] <= 100.0 for r in result.rows)
