"""Tests for the LSTM/BiLSTM, Conv1d and linear-chain CRF layers."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.conv import Conv1d, max_over_time
from repro.nn.crf import LinearChainCRF
from repro.nn.recurrent import BiLSTM, LSTM, LSTMCell
from repro.nn.tensor import Tensor


class TestLSTM:
    def test_cell_step_shapes(self, rng):
        cell = LSTMCell(4, 6, seed=0)
        h, c = cell(Tensor(rng.standard_normal((3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6) and c.shape == (3, 6)

    def test_lstm_output_shape(self, rng):
        lstm = LSTM(4, 5, seed=0)
        out = lstm(Tensor(rng.standard_normal((7, 2, 4))))
        assert out.shape == (7, 2, 5)

    def test_reverse_changes_output(self, rng):
        lstm = LSTM(3, 4, seed=0)
        x = Tensor(rng.standard_normal((5, 1, 3)))
        fwd = lstm(x).data
        bwd = lstm(x, reverse=True).data
        assert not np.allclose(fwd, bwd)

    def test_bilstm_concatenates_directions(self, rng):
        bilstm = BiLSTM(3, 8, seed=0)
        out = bilstm(Tensor(rng.standard_normal((4, 2, 3))))
        assert out.shape == (4, 2, 8)

    def test_bilstm_odd_hidden_raises(self):
        with pytest.raises(ValueError):
            BiLSTM(3, 7)

    def test_bilstm_gradients_flow_to_cells(self, rng):
        bilstm = BiLSTM(3, 4, seed=0)
        out = bilstm(Tensor(rng.standard_normal((4, 2, 3))))
        out.sum().backward()
        for param in bilstm.parameters():
            assert param.grad is not None

    def test_lstm_learns_to_separate_sequences(self, rng):
        """A BiLSTM + linear head can separate two trivially different sequence types."""
        from repro.nn.layers import Linear
        from repro.nn.optim import Adam

        enc = BiLSTM(2, 6, seed=0)
        head = Linear(6, 2, seed=1)
        params = list(enc.parameters()) + list(head.parameters())
        opt = Adam(params, lr=0.05)
        X = np.zeros((6, 20, 2))
        X[:, :10, 0] = 1.0       # class 0 sequences use channel 0
        X[:, 10:, 1] = 1.0       # class 1 sequences use channel 1
        y = np.array([0] * 10 + [1] * 10)
        for _ in range(40):
            hidden = enc(Tensor(X))
            logits = head(hidden.mean(axis=0))
            loss = F.cross_entropy(logits, y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert F.accuracy(logits, y) == 1.0


class TestConv:
    def test_output_shape(self, rng):
        conv = Conv1d(4, 6, kernel_width=3, seed=0)
        out = conv(Tensor(rng.standard_normal((10, 4))))
        assert out.shape == (8, 6)

    def test_short_sequence_is_padded(self, rng):
        conv = Conv1d(4, 6, kernel_width=5, seed=0)
        out = conv(Tensor(rng.standard_normal((2, 4))))
        assert out.shape == (1, 6)

    def test_max_over_time(self, rng):
        feats = Tensor(rng.standard_normal((7, 3)))
        pooled = max_over_time(feats)
        np.testing.assert_allclose(pooled.data, feats.data.max(axis=0))

    def test_gradients_flow(self, rng):
        conv = Conv1d(3, 4, kernel_width=2, seed=0)
        out = max_over_time(conv(Tensor(rng.standard_normal((6, 3)))).relu())
        out.sum().backward()
        assert conv.weight.grad is not None

    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            Conv1d(3, 4, kernel_width=0)


class TestCRF:
    def test_nll_is_positive_for_random_emissions(self, rng):
        crf = LinearChainCRF(4, seed=0)
        emissions = Tensor(rng.standard_normal((6, 4)))
        tags = rng.integers(0, 4, size=6)
        nll = crf.neg_log_likelihood(emissions, tags)
        assert nll.item() > 0

    def test_partition_exceeds_any_sequence_score(self, rng):
        crf = LinearChainCRF(3, seed=0)
        emissions = Tensor(rng.standard_normal((5, 3)))
        tags = rng.integers(0, 3, size=5)
        partition = crf._partition(emissions).item()
        score = crf._score_sequence(emissions, tags).item()
        assert partition >= score

    def test_viterbi_prefers_high_emission_path(self, rng):
        crf = LinearChainCRF(3, seed=0)
        emissions = np.full((4, 3), -5.0)
        best = [0, 2, 1, 0]
        for t, tag in enumerate(best):
            emissions[t, tag] = 5.0
        decoded = crf.viterbi_decode(emissions)
        np.testing.assert_array_equal(decoded, best)

    def test_training_reduces_nll(self, rng):
        from repro.nn.optim import SGD

        crf = LinearChainCRF(3, seed=0)
        emissions = Tensor(rng.standard_normal((8, 3)))
        tags = rng.integers(0, 3, size=8)
        opt = SGD(list(crf.parameters()), lr=0.1)
        first = None
        for step in range(20):
            nll = crf.neg_log_likelihood(emissions, tags)
            if step == 0:
                first = nll.item()
            opt.zero_grad()
            nll.backward()
            opt.step()
        assert nll.item() < first

    def test_length_mismatch_raises(self, rng):
        crf = LinearChainCRF(3)
        with pytest.raises(ValueError):
            crf.neg_log_likelihood(Tensor(rng.standard_normal((4, 3))), np.array([0, 1]))

    def test_marginal_predictions_argmax(self, rng):
        crf = LinearChainCRF(3)
        emissions = rng.standard_normal((5, 3))
        np.testing.assert_array_equal(
            crf.marginal_predictions(emissions), emissions.argmax(axis=-1)
        )

    def test_invalid_num_tags(self):
        with pytest.raises(ValueError):
            LinearChainCRF(0)
