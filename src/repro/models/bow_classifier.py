"""Linear bag-of-words sentence classifier.

The paper's primary sentiment model: average the (fixed) word embeddings of
the sentence and pass the result through a linear classifier, trained with
Adam.  The simplicity is deliberate -- it isolates the effect of the
embedding on downstream predictions (Section 3 / Appendix C.3.1).
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import Embedding as WordEmbedding
from repro.models.trainer import EarlyStopper, TrainingConfig
from repro.nn import functional as F
from repro.nn.data import BatchIterator
from repro.nn.layers import Embedding as EmbeddingLayer
from repro.nn.layers import Linear, Module
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor, no_grad
from repro.tasks.datasets import TextClassificationDataset

__all__ = ["BowClassifier"]


class BowClassifier(Module):
    """Mean-of-embeddings + linear classifier.

    Parameters
    ----------
    embedding:
        Either a trained :class:`~repro.embeddings.base.Embedding` or a raw
        ``(n_words, dim)`` matrix; the dataset's word ids must index its rows.
    num_classes:
        Number of output classes.
    config:
        Training configuration.
    """

    def __init__(
        self,
        embedding: WordEmbedding | np.ndarray,
        num_classes: int = 2,
        *,
        config: TrainingConfig | None = None,
    ) -> None:
        super().__init__()
        self.config = config or TrainingConfig()
        matrix = embedding.vectors if isinstance(embedding, WordEmbedding) else np.asarray(embedding)
        self.embedding = EmbeddingLayer(matrix, trainable=self.config.fine_tune_embeddings)
        self.output = Linear(self.embedding.dim, num_classes, seed=self.config.init_seed)
        self.num_classes = int(num_classes)
        self._fitted = False

    # -- forward -----------------------------------------------------------------

    def forward(self, features: Tensor) -> Tensor:
        """Logits from precomputed ``(batch, dim)`` mean-embedding features."""
        return self.output(features)

    def _document_features(self, documents: list[np.ndarray]) -> Tensor:
        """Mean embedding per document, differentiable through the table if fine-tuning."""
        if self.embedding.trainable:
            means = [self.embedding.mean_of(doc) for doc in documents]
            return Tensor.stack(means, axis=0)
        matrix = self.embedding.weight.data
        dim = matrix.shape[1]
        feats = np.zeros((len(documents), dim))
        for i, doc in enumerate(documents):
            if len(doc):
                feats[i] = matrix[doc].mean(axis=0)
        return Tensor(feats)

    # -- training ------------------------------------------------------------------

    def fit(
        self,
        train: TextClassificationDataset,
        val: TextClassificationDataset | None = None,
    ) -> dict:
        """Train the classifier; returns a small history dict."""
        cfg = self.config
        params = list(self.parameters())
        optimizer = (
            Adam(params, lr=cfg.learning_rate)
            if cfg.optimizer == "adam"
            else SGD(params, lr=cfg.learning_rate)
        )
        stopper = EarlyStopper(cfg.patience)
        history: dict[str, list[float]] = {"train_loss": [], "val_accuracy": []}

        # With frozen embeddings the features never change, so compute them once.
        static_features = None
        if not self.embedding.trainable:
            static_features = self._document_features(train.documents).data

        for epoch in range(cfg.epochs):
            self.train()
            iterator = BatchIterator(
                len(train), cfg.batch_size, seed=cfg.sampling_seed + epoch
            )
            epoch_loss = 0.0
            n_batches = 0
            for batch_idx in iterator:
                if static_features is not None:
                    feats = Tensor(static_features[batch_idx])
                else:
                    feats = self._document_features([train.documents[i] for i in batch_idx])
                logits = self.forward(feats)
                loss = F.cross_entropy(logits, train.labels[batch_idx])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                n_batches += 1
            history["train_loss"].append(epoch_loss / max(n_batches, 1))

            if val is not None and len(val):
                val_acc = self.accuracy(val)
                history["val_accuracy"].append(val_acc)
                if stopper.update(val_acc, self.state_dict()):
                    break

        if stopper.best_state is not None:
            self.load_state_dict(stopper.best_state)
        self._fitted = True
        return history

    # -- inference --------------------------------------------------------------------

    def predict(self, dataset: TextClassificationDataset) -> np.ndarray:
        """Predicted class per document."""
        self.eval()
        with no_grad():
            feats = self._document_features(dataset.documents)
            logits = self.forward(feats if isinstance(feats, Tensor) else Tensor(feats))
        return np.argmax(logits.data, axis=-1)

    def predict_proba(self, dataset: TextClassificationDataset) -> np.ndarray:
        """Class probabilities per document."""
        self.eval()
        with no_grad():
            feats = self._document_features(dataset.documents)
            logits = self.forward(feats)
            probs = F.softmax(logits, axis=-1)
        return probs.data

    def accuracy(self, dataset: TextClassificationDataset) -> float:
        preds = self.predict(dataset)
        return float(np.mean(preds == dataset.labels)) if len(dataset) else 0.0
