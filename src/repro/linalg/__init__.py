"""High-performance numerical-kernel layer.

Every decomposition and GEMM-heavy kernel in the measure suite and the
pipeline routes through this package, which provides

* a :class:`~repro.linalg.policy.KernelPolicy` selecting exact vs randomized
  SVD (``auto`` by shape/rank) and the working precision (float32/float64),
  configurable process-wide from the experiment runner's
  ``--kernel-policy`` / ``--dtype`` flags;
* :func:`~repro.linalg.svd.randomized_svd` -- a seeded, deterministic
  Halko-style range finder with power iterations, and the policy-dispatched
  :func:`~repro.linalg.svd.compute_svd` entry point;
* blocked measure kernels (:mod:`repro.linalg.kernels`) that never
  materialise ``(n, n)`` intermediates and keep reductions in float64.
"""

from repro.linalg.policy import (
    KERNEL_DTYPES,
    SVD_METHODS,
    KernelPolicy,
    configure_default_policy,
    default_policy,
)
from repro.linalg.svd import (
    compute_svd,
    exact_svd,
    randomized_svd,
    svd_residual_estimate,
)
from repro.linalg.kernels import (
    cosine_top_k,
    gram_frobenius_diff_sq,
    normalize_rows,
    row_set_overlap,
)

__all__ = [
    "KERNEL_DTYPES",
    "SVD_METHODS",
    "KernelPolicy",
    "compute_svd",
    "configure_default_policy",
    "cosine_top_k",
    "default_policy",
    "exact_svd",
    "gram_frobenius_diff_sq",
    "normalize_rows",
    "randomized_svd",
    "row_set_overlap",
    "svd_residual_estimate",
]
