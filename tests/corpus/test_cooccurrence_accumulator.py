"""Delta-merged co-occurrence accumulation is *bit-identical* to from-scratch.

The online monitor's guarantee rests on :class:`CooccurrenceAccumulator`
keeping exact integer counts per window offset: any batching of the same
documents produces the same counts, and the shared materialisation then
performs the same float operations in the same order.  These tests pin that
equality exactly -- same ``data`` bytes, same ``indices``, same ``indptr``
-- never approximately.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.cooccurrence import CooccurrenceAccumulator, build_cooccurrence


def assert_bit_identical(a, b):
    """csr equality at the byte level: structure and float payload exact."""
    assert a.shape == b.shape
    np.testing.assert_array_equal(a.indptr, b.indptr)
    np.testing.assert_array_equal(a.indices, b.indices)
    assert a.data.tobytes() == b.data.tobytes()


DOCS = [
    [0, 1, 2, 1, 0],
    [3, 2, 2, 0],
    [4, 0, 1],
    [1, 1, 1, 1],
    [2, 4],
]


class TestDeltaMergeBitIdentity:
    @pytest.mark.parametrize("split", [1, 2, 3, 4])
    @pytest.mark.parametrize("distance_weighting", [True, False])
    def test_batched_equals_from_scratch(self, split, distance_weighting):
        accumulator = CooccurrenceAccumulator(
            5, window_size=3, distance_weighting=distance_weighting
        )
        for start in range(0, len(DOCS), split):
            accumulator.add(DOCS[start:start + split])
        expected = build_cooccurrence(
            DOCS, 5, window_size=3, distance_weighting=distance_weighting
        )
        assert_bit_identical(accumulator.materialize(), expected)

    def test_asymmetric_counts(self):
        accumulator = CooccurrenceAccumulator(5, window_size=2, symmetric=False)
        accumulator.add(DOCS[:2])
        accumulator.add(DOCS[2:])
        expected = build_cooccurrence(DOCS, 5, window_size=2, symmetric=False)
        assert_bit_identical(accumulator.materialize(), expected)

    def test_materialize_is_repeatable(self):
        accumulator = CooccurrenceAccumulator(5, window_size=3)
        accumulator.add(DOCS)
        assert_bit_identical(accumulator.materialize(), accumulator.materialize())

    def test_counters(self):
        accumulator = CooccurrenceAccumulator(5, window_size=3)
        accumulator.add(DOCS[:2])
        accumulator.add(DOCS[2:])
        assert accumulator.documents_added == len(DOCS)
        assert accumulator.tokens_added == sum(len(d) for d in DOCS)
        assert accumulator.nnz > 0


class TestRemap:
    def test_remap_then_add_equals_final_id_space(self):
        # Two documents arrive under a 3-word id space, the vocabulary grows
        # to 5 words with every old id moved, then two more documents arrive
        # under the final space.  The result must equal accumulating all four
        # documents under the final space from scratch.
        old_to_new = np.array([4, 0, 2], dtype=np.int64)   # old id -> new id
        early = [[0, 1, 2, 1], [2, 2, 0]]
        late = [[3, 1, 4, 0], [1, 3]]
        accumulator = CooccurrenceAccumulator(3, window_size=2)
        accumulator.add(early)
        accumulator.remap(old_to_new, 5)
        accumulator.add(late)

        early_final = [[int(old_to_new[i]) for i in doc] for doc in early]
        expected = build_cooccurrence(early_final + late, 5, window_size=2)
        assert_bit_identical(accumulator.materialize(), expected)
        assert accumulator.vocab_size == 5

    def test_identity_remap_is_noop(self):
        accumulator = CooccurrenceAccumulator(5, window_size=3)
        accumulator.add(DOCS)
        before = accumulator.materialize()
        accumulator.remap(np.arange(5, dtype=np.int64), 5)
        assert_bit_identical(accumulator.materialize(), before)

    def test_remap_validation(self):
        accumulator = CooccurrenceAccumulator(3, window_size=2)
        accumulator.add([[0, 1, 2]])
        with pytest.raises(ValueError):
            accumulator.remap(np.array([0, 1]), 3)          # wrong length
        with pytest.raises(ValueError):
            accumulator.remap(np.array([0, 1, 2]), 2)       # shrinking
        with pytest.raises(ValueError):
            accumulator.remap(np.array([0, 1, 3]), 3)       # out of range
        with pytest.raises(ValueError):
            accumulator.remap(np.array([0, 1, 1]), 3)       # not injective


@settings(max_examples=25, deadline=None)
@given(
    docs=st.lists(
        st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=20),
        min_size=1, max_size=8,
    ),
    n_batches=st.integers(min_value=1, max_value=4),
)
def test_property_any_batching_is_bit_identical(docs, n_batches):
    accumulator = CooccurrenceAccumulator(8, window_size=3)
    for batch in np.array_split(np.arange(len(docs)), n_batches):
        if len(batch):
            accumulator.add([docs[i] for i in batch])
    expected = build_cooccurrence(docs, 8, window_size=3)
    assert_bit_identical(accumulator.materialize(), expected)
