"""End-to-end online monitoring over a live cluster: the acceptance test.

Boots the real serving API with the monitor in distributed mode plus two
in-process ``repro-worker`` loops over real HTTP, ingests corpus deltas
through ``POST /monitor/ingest``, and pins the PR's acceptance criteria:

* successive snapshots trigger a rolling retrain **leased to the fleet**
  (workers fetch the content-addressed snapshots through the coordinator's
  /artifacts tier and rebuild the pipeline from JSON);
* the retrain's aggregated stability measures are **bit-identical** to an
  equivalent batch grid run over the same snapshot pair;
* no embedding pair is trained twice anywhere in the cluster;
* the thresholded **drift alert is observable on /monitor/events** and the
  monitor's counters on ``/metrics``;
* warm re-evaluation of the already-measured pair **trains nothing**.
"""

import asyncio
import http.client
import json
import threading
import warnings

import pytest

from repro.cluster import ClusterWorker
from repro.engine import GridEngine
from repro.engine.store import ArtifactStore
from repro.instability.pipeline import InstabilityPipeline
from repro.monitor import DriftEvaluator, MonitorConfig
from repro.serving import ServiceConfig, StabilityService
from repro.serving.api import StabilityAPIServer, quick_serve_config


@pytest.fixture(scope="module")
def monitored_cluster():
    """A live monitored coordinator (real HTTP) plus two polling workers."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        service = StabilityService(
            quick_serve_config(), config=ServiceConfig(lease_ttl=30)
        )
    monitor = service.enable_monitor(
        MonitorConfig(distributed=True, thresholds={"eis": 0.0})
    )
    api = StabilityAPIServer(service, port=0)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run_server() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(api.start())
        started.set()
        loop.run_forever()

    server_thread = threading.Thread(target=run_server, daemon=True)
    server_thread.start()
    assert started.wait(timeout=30), "server failed to start"
    url = f"http://127.0.0.1:{api.port}"

    workers = [
        ClusterWorker(url, worker_id=f"monitor-worker-{index}", poll_interval=0.05)
        for index in range(2)
    ]
    threads = [threading.Thread(target=worker.run, daemon=True) for worker in workers]
    for thread in threads:
        thread.start()
    try:
        yield api, service, monitor, workers
    finally:
        for worker in workers:
            worker.stop()
        for thread in threads:
            thread.join(timeout=30)
        asyncio.run_coroutine_threadsafe(api.stop(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        server_thread.join(timeout=10)
        service.close()


def post_json(port: int, path: str, body: dict) -> tuple[int, dict]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    conn.request(
        "POST", path, body=json.dumps(body),
        headers={"Content-Type": "application/json"},
    )
    response = conn.getresponse()
    payload = json.loads(response.read())
    conn.close()
    return response.status, payload


def get_json(port: int, path: str) -> dict:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    conn.request("GET", path)
    payload = json.loads(conn.getresponse().read())
    conn.close()
    return payload


def get_events(port: int) -> list[dict]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    conn.request("GET", "/monitor/events")
    response = conn.getresponse()
    assert response.status == 200
    lines = [json.loads(line) for line in response.read().decode().strip().splitlines()]
    conn.close()
    return lines


def total_trainings(workers) -> tuple[int, int]:
    embedding = sum(w.stats()["embedding_train_count"] for w in workers)
    downstream = sum(w.stats()["downstream_train_count"] for w in workers)
    return embedding, downstream


@pytest.fixture(scope="module")
def ingested(monitored_cluster):
    """Corpus deltas ingested over HTTP; the rolling retrain fully drained."""
    api, service, monitor, workers = monitored_cluster
    corpus = service.pipeline.corpus_pair.base
    documents = [[corpus.word_list[i] for i in doc] for doc in corpus.documents]

    status1, first = post_json(
        api.port, "/monitor/ingest", {"documents": documents[:40]}
    )
    status2, second = post_json(
        api.port, "/monitor/ingest", {"documents": documents[40:]}
    )
    assert status1 == 200 and status2 == 200
    assert monitor.wait_idle(timeout=300), "distributed retrain did not finish"
    return first, second


class TestMonitoredCluster:
    def test_rolling_retrain_over_the_fleet(self, monitored_cluster, ingested):
        api, service, monitor, workers = monitored_cluster
        first, second = ingested
        assert first["version"] == 1 and second["version"] == 2

        counters = monitor.counters()
        assert counters["snapshots_cut"] == 2
        assert counters["retrains_completed"] == 1
        assert counters["retrains_failed"] == 0
        assert counters["retrain_records"] == 4      # svd x (4,6) x (1,32)

        # The retrain really ran on the fleet, with zero duplicate trainings:
        # the snapshot-pair grid has exactly two unique embedding pairs.
        embedding, downstream = total_trainings(workers)
        assert embedding == 2
        assert downstream == 4 * 2                   # two models per cell, once
        cluster_stats = get_json(api.port, "/metrics")["cluster"]
        assert cluster_stats["counters"]["duplicate_results"] == 0
        assert cluster_stats["counters"]["group_failures"] == 0

    def test_measures_bit_identical_to_batch_grid(self, monitored_cluster, ingested):
        # An equivalent batch grid on a fresh store (only the snapshots
        # seeded) aggregates to the exact same drift report.
        api, service, monitor, workers = monitored_cluster
        from repro.corpus.snapshots import load_snapshot, store_snapshot

        report = monitor.drift.last_report
        assert report is not None and report.cells == 4
        config = monitor.retrain_config(*report.snapshot_pair)
        fresh_store = ArtifactStore()
        for key in report.snapshot_pair:
            store_snapshot(fresh_store, load_snapshot(service.store, key))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            records = GridEngine(
                InstabilityPipeline(config, store=fresh_store), coordinator_url=""
            ).run(with_measures=True)
        batch_report = DriftEvaluator(monitor.drift.thresholds).evaluate(
            records,
            base_version=report.base_version,
            version=report.version,
            snapshot_pair=report.snapshot_pair,
        )
        assert batch_report.measures == report.measures      # exact floats
        assert batch_report.disagreement == report.disagreement
        assert batch_report.alerts == report.alerts

    def test_drift_alert_on_events_and_counters_on_metrics(
        self, monitored_cluster, ingested
    ):
        api, service, monitor, workers = monitored_cluster
        events = get_events(api.port)
        kinds = [e["kind"] for e in events]
        assert kinds.count("snapshot_cut") == 2
        assert "retrain_started" in kinds
        started = next(e for e in events if e["kind"] == "retrain_started")
        assert started["distributed"] is True and started.get("run_id")
        assert "measures_ready" in kinds
        assert "drift_alert" in kinds
        alert = next(e for e in events if e["kind"] == "drift_alert")
        assert alert["alerts"][0]["measure"] == "eis"

        metrics = get_json(api.port, "/metrics")
        assert metrics["monitor"]["counters"]["drift_alerts"] >= 1
        assert metrics["monitor"]["version"] == 2

    def test_warm_reevaluation_trains_nothing(self, monitored_cluster, ingested):
        api, service, monitor, workers = monitored_cluster
        report = monitor.drift.last_report
        trainings_before = total_trainings(workers)
        runs_before = get_json(api.port, "/metrics")["cluster"]["counters"][
            "runs_created"
        ]
        warm = monitor.evaluate_pair(
            report.base_version, report.snapshot_pair[0],
            report.version, report.snapshot_pair[1],
        )
        assert warm.measures == report.measures
        assert total_trainings(workers) == trainings_before
        runs_after = get_json(api.port, "/metrics")["cluster"]["counters"][
            "runs_created"
        ]
        assert runs_after == runs_before            # no grid even dispatched
        assert monitor.counters()["reports_warm"] == 1
