"""Worker warm-up: ship a pre-built corpus pair to scheduler workers once.

The parallel scheduler used to rebuild the whole pipeline -- including
regenerating the synthetic corpus pair -- inside every worker process.  A
:class:`CorpusShipment` instead packs the parent's already-generated pair
into flat arrays, publishes them through one
:class:`multiprocessing.shared_memory.SharedMemory` segment, and hands the
workers a small picklable handle; each worker attaches and reconstructs the
pair as zero-copy views, so the corpus is built exactly once per run instead
of once per worker.

When shared memory is unavailable (platform quirks, exhausted ``/dev/shm``),
the shipment transparently falls back to carrying the packed arrays inline in
the handle -- still one build, just shipped by pickling instead of mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.synthetic import Corpus, CorpusPair
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["CorpusShipment", "pack_corpus", "unpack_corpus", "PackedCorpus"]


@dataclass
class PackedCorpus:
    """A :class:`Corpus` flattened into three arrays (plus its word list)."""

    tokens: np.ndarray        # every document concatenated, int64
    offsets: np.ndarray       # document i is tokens[offsets[i]:offsets[i+1]]
    topics: np.ndarray
    word_list: list[str]
    name: str


def pack_corpus(corpus: Corpus) -> PackedCorpus:
    """Flatten a corpus into shared-memory-friendly arrays."""
    lengths = np.asarray([len(d) for d in corpus.documents], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    tokens = (
        np.concatenate(corpus.documents)
        if corpus.documents
        else np.array([], dtype=np.int64)
    ).astype(np.int64, copy=False)
    return PackedCorpus(
        tokens=tokens,
        offsets=offsets,
        topics=np.asarray(corpus.document_topics),
        word_list=list(corpus.word_list),
        name=corpus.name,
    )


def unpack_corpus(packed: PackedCorpus) -> Corpus:
    """Rebuild a corpus from packed arrays; documents are zero-copy views."""
    documents = [
        packed.tokens[start:stop]
        for start, stop in zip(packed.offsets[:-1], packed.offsets[1:])
    ]
    return Corpus(
        word_list=list(packed.word_list),
        documents=documents,
        document_topics=np.asarray(packed.topics),
        name=packed.name,
    )


def _array_specs(arrays: dict[str, np.ndarray]) -> tuple[list[tuple], int]:
    """Byte layout (name, dtype, shape, offset) of arrays packed back to back."""
    specs, cursor = [], 0
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        specs.append((name, arr.dtype.str, arr.shape, cursor))
        cursor += arr.nbytes
    return specs, cursor


class CorpusShipment:
    """Picklable handle delivering a pre-built :class:`CorpusPair` to workers.

    Create with :meth:`create` in the parent, pass through the pool
    initializer, call :meth:`materialize` in each worker, and finally
    :meth:`close` (parent side) once the pool is done.  Attributes
    ``via_shared_memory`` and ``nbytes`` expose how the pair travelled, and
    the scheduler surfaces them as warm-up counters.
    """

    def __init__(
        self,
        *,
        shm_name: str | None,
        specs: list[tuple],
        inline: dict[str, np.ndarray] | None,
        meta: dict,
        nbytes: int,
    ) -> None:
        self._shm_name = shm_name
        self._specs = specs
        self._inline = inline
        self._meta = meta
        self.nbytes = int(nbytes)
        self._shm = None          # parent-side owner / worker-side attachment
        self._owner = False       # True only on the creating (parent) handle

    # -- construction (parent) ------------------------------------------------

    @classmethod
    def create(cls, pair: CorpusPair, *, use_shared_memory: bool = True) -> "CorpusShipment":
        packed = {"base": pack_corpus(pair.base), "drifted": pack_corpus(pair.drifted)}
        arrays = {
            f"{side}/{field}": getattr(p, field)
            for side, p in packed.items()
            for field in ("tokens", "offsets", "topics")
        }
        meta = {
            "config": pair.config,
            "word_lists": {side: p.word_list for side, p in packed.items()},
            "names": {side: p.name for side, p in packed.items()},
        }
        specs, total = _array_specs(arrays)

        shipment = None
        if use_shared_memory and total > 0:
            shm = None
            try:
                from multiprocessing import shared_memory

                shm = shared_memory.SharedMemory(create=True, size=total)
                for (name, dtype, shape, offset), arr in zip(specs, arrays.values()):
                    view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offset)
                    view[...] = arr
                shipment = cls(
                    shm_name=shm.name, specs=specs, inline=None, meta=meta, nbytes=total
                )
                shipment._shm = shm
                shipment._owner = True
            except Exception as error:  # pragma: no cover - platform dependent
                # A segment created before the failure must not leak: POSIX
                # shared memory outlives the process unless unlinked.
                if shm is not None:
                    try:
                        shm.close()
                        shm.unlink()
                    except OSError:
                        pass
                logger.info("shared-memory warm-up unavailable (%s); shipping inline", error)
        if shipment is None:
            shipment = cls(
                shm_name=None, specs=specs,
                inline={name: np.ascontiguousarray(arr) for name, arr in arrays.items()},
                meta=meta, nbytes=total,
            )
        return shipment

    @property
    def via_shared_memory(self) -> bool:
        return self._shm_name is not None

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_shm"] = None      # segments are re-attached by name in workers
        state["_owner"] = False   # only the creating handle may unlink
        return state

    # -- materialisation (worker) ---------------------------------------------

    def _attach_arrays(self) -> dict[str, np.ndarray]:
        if self._inline is not None:
            return self._inline
        from multiprocessing import shared_memory

        if self._shm is None:
            try:
                # Python 3.13+: attach without resource-tracker registration
                # (the creating process owns cleanup).
                self._shm = shared_memory.SharedMemory(name=self._shm_name, track=False)
            except TypeError:
                # Older Pythons: plain attach.  Under the fork start method the
                # tracker process is shared and registration is idempotent, so
                # the owner's single unlink still cleans up exactly once.
                self._shm = shared_memory.SharedMemory(name=self._shm_name)
        return {
            name: np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=offset)
            for name, dtype, shape, offset in self._specs
        }

    def materialize(self) -> CorpusPair:
        """Reconstruct the corpus pair (zero-copy views over shared memory).

        The returned corpora reference this shipment's buffer; keep the
        shipment alive for as long as the pair is used (the scheduler keeps it
        in the worker-global state).
        """
        arrays = self._attach_arrays()
        corpora = {}
        for side in ("base", "drifted"):
            corpora[side] = unpack_corpus(
                PackedCorpus(
                    tokens=arrays[f"{side}/tokens"],
                    offsets=arrays[f"{side}/offsets"],
                    topics=arrays[f"{side}/topics"],
                    word_list=self._meta["word_lists"][side],
                    name=self._meta["names"][side],
                )
            )
        return CorpusPair(
            base=corpora["base"], drifted=corpora["drifted"], config=self._meta["config"]
        )

    # -- cleanup (parent) -----------------------------------------------------

    def close(self) -> None:
        """Release the shared segment (the creating handle also unlinks it)."""
        if self._shm is not None:
            try:
                self._shm.close()
                if self._owner:
                    self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            self._shm = None
