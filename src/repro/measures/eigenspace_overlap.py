"""The eigenspace overlap score (May et al., 2019).

``EO(X, X~) = (1/d) ||U^T U~||_F^2`` where ``U`` and ``U~`` are the left
singular vectors of the two embeddings and ``d`` is the larger of the two
ranks.  The score lies in [0, 1]; we expose the ``1 - EO`` distance form so
larger values mean more instability, matching the "1 - Eigenspace Overlap"
rows in the paper's tables.
"""

from __future__ import annotations

import numpy as np

from repro.measures.base import MEASURES, EmbeddingDistanceMeasure
from repro.utils.validation import check_embedding_pair

__all__ = ["eigenspace_overlap", "EigenspaceOverlapDistance"]


def eigenspace_overlap(X: np.ndarray, X_tilde: np.ndarray) -> float:
    """Eigenspace overlap score in [0, 1] (1 = identical column spaces)."""
    X, X_tilde = check_embedding_pair(X, X_tilde)
    U, S, _ = np.linalg.svd(X, full_matrices=False)
    U_t, S_t, _ = np.linalg.svd(X_tilde, full_matrices=False)

    def rank_restrict(U: np.ndarray, S: np.ndarray) -> np.ndarray:
        if S.size == 0:
            return U
        tol = S.max() * max(X.shape) * np.finfo(np.float64).eps
        rank = max(int(np.sum(S > tol)), 1)
        return U[:, :rank]

    U = rank_restrict(U, S)
    U_t = rank_restrict(U_t, S_t)
    d = max(U.shape[1], U_t.shape[1])
    overlap = float(np.sum((U.T @ U_t) ** 2) / d)
    # Guard against round-off pushing the score outside [0, 1].
    return float(np.clip(overlap, 0.0, 1.0))


@MEASURES.register("1-eigenspace-overlap")
class EigenspaceOverlapDistance(EmbeddingDistanceMeasure):
    """``1 - eigenspace overlap score``."""

    name = "1-eigenspace-overlap"

    def compute(self, X: np.ndarray, X_tilde: np.ndarray) -> float:
        return 1.0 - eigenspace_overlap(X, X_tilde)
