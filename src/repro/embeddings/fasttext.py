"""Subword (fastText-style) embeddings for the Appendix E.1 robustness study.

fastText (Bojanowski et al., 2017) represents a word as the sum of its
character n-gram vectors plus a word vector, trained with the same negative
sampling objective as word2vec.  We reuse the CBOW training machinery but
compose every input word vector from hashed n-gram buckets, so the
stability-memory experiments of Appendix E.1 exercise a genuinely subword
pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.synthetic import Corpus
from repro.corpus.vocabulary import Vocabulary
from repro.embeddings.base import EMBEDDING_ALGORITHMS, Embedding
from repro.embeddings.word2vec import CBOWModel, build_cbow_examples
from repro.utils.logging import get_logger
from repro.utils.rng import check_random_state

logger = get_logger(__name__)

__all__ = ["SubwordEmbeddingModel", "character_ngrams", "hash_ngram"]


def character_ngrams(word: str, min_n: int = 3, max_n: int = 5) -> list[str]:
    """Character n-grams of ``<word>`` with boundary markers, fastText-style."""
    marked = f"<{word}>"
    grams = []
    for n in range(min_n, max_n + 1):
        if n > len(marked):
            break
        grams.extend(marked[i : i + n] for i in range(len(marked) - n + 1))
    return grams


def hash_ngram(gram: str, num_buckets: int) -> int:
    """Deterministic FNV-1a hash of an n-gram into ``num_buckets``."""
    h = np.uint64(2166136261)
    for ch in gram.encode("utf-8"):
        h = np.uint64((int(h) ^ ch) * 16777619 & 0xFFFFFFFF)
    return int(h) % num_buckets


@EMBEDDING_ALGORITHMS.register("fasttext")
class SubwordEmbeddingModel(CBOWModel):
    """CBOW with subword (hashed character n-gram) input vectors.

    Parameters
    ----------
    dim, window_size, negative_samples, learning_rate, epochs, batch_size, seed:
        As in :class:`~repro.embeddings.word2vec.CBOWModel`.
    num_buckets:
        Number of hash buckets for character n-grams.
    min_n, max_n:
        Character n-gram length range.
    """

    name = "fasttext"

    def __init__(
        self,
        dim: int = 50,
        *,
        num_buckets: int = 2000,
        min_n: int = 3,
        max_n: int = 5,
        **cbow_kwargs,
    ) -> None:
        super().__init__(dim, **cbow_kwargs)
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        if not (1 <= min_n <= max_n):
            raise ValueError("need 1 <= min_n <= max_n")
        self.num_buckets = int(num_buckets)
        self.min_n = int(min_n)
        self.max_n = int(max_n)

    def _word_ngram_ids(self, vocab: Vocabulary) -> tuple[np.ndarray, np.ndarray]:
        """Padded matrix of n-gram bucket ids per word, plus per-word counts.

        Bucket ids are offset by the vocabulary size so they index into the
        same parameter table as the word vectors; ``num_buckets`` is the pad
        slot at the very end.
        """
        n_words = len(vocab)
        ngram_lists = []
        for word in vocab.words:
            grams = character_ngrams(word, self.min_n, self.max_n)
            ids = [n_words + hash_ngram(g, self.num_buckets) for g in grams]
            ngram_lists.append(ids)
        max_len = max((len(ids) for ids in ngram_lists), default=0)
        pad_slot = n_words + self.num_buckets
        table = np.full((n_words, max(max_len, 1)), pad_slot, dtype=np.int64)
        counts = np.zeros(n_words, dtype=np.int64)
        for i, ids in enumerate(ngram_lists):
            counts[i] = len(ids)
            if ids:
                table[i, : len(ids)] = ids
        return table, counts

    def _train(
        self, docs: list[np.ndarray], vocab: Vocabulary, rng: np.random.Generator
    ) -> np.ndarray:
        n_words = len(vocab)
        ngram_table, ngram_counts = self._word_ngram_ids(vocab)
        pad_word = n_words + self.num_buckets  # shared pad slot (all-zero row)
        n_params = n_words + self.num_buckets + 1

        contexts, sizes, targets = build_cbow_examples(docs, self.window_size, pad_word)
        n_examples = len(targets)

        W_in = (rng.random((n_params, self.dim)) - 0.5) / self.dim
        W_in[pad_word] = 0.0
        W_out = np.zeros((n_words, self.dim))

        if n_examples == 0:
            logger.warning("subword model received no training examples; returning init")
            return self._compose(W_in, ngram_table, ngram_counts, n_words)

        neg_probs = self._negative_table(vocab)
        total_steps = self.epochs * int(np.ceil(n_examples / self.batch_size))
        step = 0
        denom = 1.0 + ngram_counts.astype(np.float64)  # word vector + its n-grams

        for _epoch in range(self.epochs):
            order = rng.permutation(n_examples)
            for start in range(0, n_examples, self.batch_size):
                lr = self.learning_rate * max(1e-1, 1.0 - step / max(total_steps, 1))
                step += 1
                batch = order[start : start + self.batch_size]
                ctx = contexts[batch]
                size = sizes[batch].astype(np.float64)
                tgt = targets[batch]
                B = len(batch)

                # Input representation of a context word = mean of its word
                # vector and its n-gram vectors; hidden = mean over context.
                ctx_flat = ctx.ravel()
                real = ctx_flat < n_words
                word_part = W_in[np.where(real, ctx_flat, pad_word)]
                ngram_sum = np.zeros_like(word_part)
                ngram_ids = ngram_table[np.where(real, ctx_flat, 0)]
                ngram_ids[~real] = pad_word
                ngram_sum = W_in[ngram_ids].sum(axis=1)
                word_denom = np.where(real, denom[np.where(real, ctx_flat, 0)], 1.0)
                composed = (word_part + ngram_sum) / word_denom[:, None]
                composed[~real] = 0.0
                composed = composed.reshape(B, ctx.shape[1], self.dim)
                hidden = composed.sum(axis=1) / size[:, None]

                negs = rng.choice(n_words, size=(B, self.negative_samples), p=neg_probs)
                samples = np.concatenate([tgt[:, None], negs], axis=1)
                labels = np.zeros((B, 1 + self.negative_samples))
                labels[:, 0] = 1.0

                out_vecs = W_out[samples]
                scores = np.einsum("bkd,bd->bk", out_vecs, hidden)
                probs = self._sigmoid(scores)
                delta = probs - labels

                grad_hidden = np.einsum("bk,bkd->bd", delta, out_vecs)
                grad_out = delta[:, :, None] * hidden[:, None, :]
                np.add.at(W_out, samples.ravel(), (-lr * grad_out).reshape(-1, self.dim))

                # Propagate to word vectors and their n-gram buckets.
                ctx_grad = (-lr) * grad_hidden / size[:, None]                 # (B, d)
                per_slot = np.repeat(ctx_grad, ctx.shape[1], axis=0)           # (B*2w, d)
                per_slot = per_slot / word_denom[:, None]
                per_slot[~real] = 0.0
                np.add.at(W_in, np.where(real, ctx_flat, pad_word), per_slot)
                ngram_grad = np.repeat(per_slot[:, None, :], ngram_ids.shape[1], axis=1)
                np.add.at(W_in, ngram_ids.ravel(), ngram_grad.reshape(-1, self.dim))
                W_in[pad_word] = 0.0

        return self._compose(W_in, ngram_table, ngram_counts, n_words)

    @staticmethod
    def _compose(
        W_in: np.ndarray, ngram_table: np.ndarray, ngram_counts: np.ndarray, n_words: int
    ) -> np.ndarray:
        """Final word vectors: mean of word vector and its n-gram vectors."""
        ngram_sum = W_in[ngram_table].sum(axis=1)
        denom = (1.0 + ngram_counts.astype(np.float64))[:, None]
        return (W_in[:n_words] + ngram_sum) / denom

    def fit(self, corpus: Corpus, *, vocab: Vocabulary | None = None) -> Embedding:
        vocab = self._resolve_vocab(corpus, vocab)
        rng = check_random_state(self.seed)
        docs = corpus.encode_documents(vocab)
        docs = self._subsample(docs, vocab, rng)
        vectors = self._train(docs, vocab, rng)
        return Embedding(vocab=vocab, vectors=vectors, metadata=self._metadata(corpus))
