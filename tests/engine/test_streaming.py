"""Streaming grid execution tests.

The acceptance bar of the streaming path: records from ``run_iter()`` -- in
any arrival order -- reassemble bit-identically to the serial batch result,
the ordered commit is exact, and streaming is genuinely incremental (records
surface before the grid finishes).
"""

import random
import warnings

import pytest

from repro.corpus.synthetic import SyntheticCorpusConfig
from repro.engine import ArtifactStore, EmbeddingShipment, GridEngine
from repro.engine.streaming import OrderedCommitter, canonical_cell_keys, commit_in_order
from repro.instability.grid import GridRecord
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig

STREAM_CONFIG = PipelineConfig(
    corpus=SyntheticCorpusConfig(vocab_size=120, n_documents=60, doc_length_mean=30, seed=7),
    algorithms=("svd",),
    dimensions=(4, 6),
    precisions=(1, 32),
    seeds=(0,),
    tasks=("sst2",),
    embedding_epochs=2,
    downstream_epochs=3,
    ner_epochs=2,
)


def _record(algorithm="svd", dim=4, precision=1, seed=0, task="sst2"):
    return GridRecord(
        algorithm=algorithm, task=task, dim=dim, precision=precision, seed=seed,
        disagreement=0.1, accuracy_a=0.9, accuracy_b=0.9,
    )


@pytest.fixture(scope="module")
def serial_records():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        return GridEngine(STREAM_CONFIG).run(with_measures=True)


class TestCanonicalKeys:
    def test_product_order_with_tasks_innermost(self):
        keys = canonical_cell_keys(("a",), (4, 8), (1,), (0, 1), ("t1", "t2"))
        assert keys[:4] == [
            ("a", 4, 1, 0, "t1"), ("a", 4, 1, 0, "t2"),
            ("a", 4, 1, 1, "t1"), ("a", 4, 1, 1, "t2"),
        ]
        assert len(keys) == 2 * 2 * 2

    def test_matches_batch_record_order(self, serial_records):
        cfg = STREAM_CONFIG
        keys = canonical_cell_keys(
            cfg.algorithms, cfg.dimensions, cfg.precisions, cfg.seeds, cfg.tasks
        )
        assert [(r.algorithm, r.dim, r.precision, r.seed, r.task) for r in serial_records] == keys


class TestOrderedCommitter:
    GRID = dict(
        algorithms=("a", "b"), dimensions=(4, 8), precisions=(1, 32),
        seeds=(0, 1), tasks=("t",),
    )

    def _keys(self):
        return canonical_cell_keys(
            self.GRID["algorithms"], self.GRID["dimensions"],
            self.GRID["precisions"], self.GRID["seeds"], self.GRID["tasks"],
        )

    def test_any_arrival_order_commits_canonically(self):
        keys = self._keys()
        records = [_record(a, d, p, s, t) for (a, d, p, s, t) in keys]
        for trial in range(5):
            shuffled = list(records)
            random.Random(trial).shuffle(shuffled)
            out = list(commit_in_order([[r] for r in shuffled], keys))
            assert out == records

    def test_buffers_until_due(self):
        keys = self._keys()
        committer = OrderedCommitter(keys)
        late = _record(*keys[1])
        assert list(committer.push(late)) == []
        assert committer.buffered == 1 and committer.committed == 0
        first = _record(*keys[0])
        assert list(committer.push(first)) == [first, late]
        assert committer.buffered == 0 and committer.committed == 2

    def test_duplicate_push_raises(self):
        keys = self._keys()
        committer = OrderedCommitter(keys)
        list(committer.push(_record(*keys[0])))
        with pytest.raises(ValueError, match="twice"):
            list(committer.push(_record(*keys[0])))
        # A buffered (not yet committed) duplicate is also rejected.
        list(committer.push(_record(*keys[2])))
        with pytest.raises(ValueError, match="twice"):
            list(committer.push(_record(*keys[2])))

    def test_unexpected_cell_raises(self):
        committer = OrderedCommitter(self._keys())
        with pytest.raises(KeyError, match="unexpected"):
            list(committer.push(_record("zz", 99, 1, 0, "t")))

    def test_finish_raises_on_missing_cells(self):
        keys = self._keys()
        committer = OrderedCommitter(keys)
        list(committer.push(_record(*keys[0])))
        with pytest.raises(RuntimeError, match="uncommitted"):
            committer.finish()

    def test_duplicate_canonical_keys_rejected(self):
        keys = self._keys()
        with pytest.raises(ValueError, match="duplicate"):
            OrderedCommitter(keys + keys[:1])


class TestRunIter:
    def test_serial_stream_bit_identical_to_batch(self, serial_records):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            streamed = list(GridEngine(STREAM_CONFIG).run_iter(with_measures=True))
        assert streamed == serial_records

    def test_parallel_ordered_stream_bit_identical(self, serial_records):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            streamed = list(
                GridEngine(STREAM_CONFIG).run_iter(with_measures=True, n_workers=2)
            )
        assert streamed == serial_records

    def test_parallel_arrival_order_reassembles_bit_identically(self, serial_records):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            streamed = list(
                GridEngine(STREAM_CONFIG).run_iter(
                    with_measures=True, n_workers=2, ordered=False
                )
            )
        # Any arrival order, same cells; reassembling by canonical key is exact.
        key = lambda r: (r.algorithm, r.dim, r.precision, r.seed, r.task)
        assert sorted(streamed, key=key) == sorted(serial_records, key=key)
        assert {key(r) for r in streamed} == {key(r) for r in serial_records}

    def test_stream_is_incremental(self):
        """The first records surface before every group has been evaluated."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            engine = GridEngine(STREAM_CONFIG)
            iterator = engine.run_iter(with_measures=False, ordered=False)
            first = next(iterator)
        assert first is not None
        # Only the first group's pair has been trained so far.
        assert engine.pipeline.embedding_train_count == 1
        remaining = list(iterator)
        assert engine.pipeline.embedding_train_count == 2
        assert len(remaining) == 3

    def test_batch_run_is_the_ordered_stream(self, serial_records):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            assert GridEngine(STREAM_CONFIG).run(with_measures=True) == serial_records


class TestEmbeddingShipmentWarmup:
    def test_shipment_roundtrip_preserves_pairs(self):
        import pickle

        pipeline = InstabilityPipeline(STREAM_CONFIG)
        pair = pipeline.embedding_pair("svd", 4, 0)
        key = "test-key"
        shipment = EmbeddingShipment.create({key: pair})
        try:
            remote = pickle.loads(pickle.dumps(shipment))
            target = ArtifactStore()
            assert remote.seed(target) == 1
            loaded = target.get_embedding_pair("embedding_pair", key)
            assert loaded is not None
            for original, shipped in zip(pair, loaded):
                assert original.vocab.words == shipped.vocab.words
                assert (original.vectors == shipped.vectors).all()
                assert original.metadata == shipped.metadata
            assert target.stat("embedding_pair").preloads == 1
            remote.close()
        finally:
            shipment.close()

    def test_warm_memory_store_parallel_rerun_ships_pairs(self):
        """Pairs trained in the parent (a serial run, or a serving process
        answering /measure queries) travel to workers through shared memory
        when the grid later fans out -- even though the store has no disk
        tier for workers to share."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            engine = GridEngine(STREAM_CONFIG, store=ArtifactStore())
            first = engine.run(with_measures=True)            # serial: parent trains
            assert engine.pipeline.embedding_train_count == 2
            second = engine.run(with_measures=True, n_workers=2)
        assert second == first
        warmup = engine.last_warmup
        # Both trained dims (4 and 6) shipped; dim 6 doubles as the EIS anchor.
        assert warmup["pairs_shipped"] == 2
        assert warmup["pair_nbytes"] > 0
        assert warmup["pairs_via_shared_memory"]
        # The parent trained nothing new for the parallel rerun.
        assert engine.pipeline.embedding_train_count == 2

    def test_cold_parallel_run_ships_no_pairs(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            engine = GridEngine(STREAM_CONFIG, store=ArtifactStore())
            engine.run(with_measures=False, n_workers=2)
        assert engine.last_warmup["pairs_shipped"] == 0

    def test_init_worker_with_pair_shipment_skips_training(self):
        """A worker whose store was seeded answers embedding_pair from cache."""
        import pickle

        from repro.engine import scheduler as scheduler_module
        from repro.engine.scheduler import _init_worker
        from repro.engine.store import config_hash

        parent = InstabilityPipeline(STREAM_CONFIG)
        pair = parent.embedding_pair("svd", 4, 0)
        key = config_hash(parent._embedding_fields("svd", 4, 0))
        shipment = EmbeddingShipment.create({key: pair})
        try:
            handle = pickle.loads(pickle.dumps(shipment))
            _init_worker(STREAM_CONFIG, None, None, None, handle)
            worker = scheduler_module._WORKER_PIPELINE
            assert worker.store.stat("embedding_pair").preloads == 1
            shipped = worker.embedding_pair("svd", 4, 0)
            assert worker.embedding_train_count == 0
            assert (shipped[0].vectors == pair[0].vectors).all()
            assert (shipped[1].vectors == pair[1].vectors).all()
        finally:
            scheduler_module._WORKER_PIPELINE = None
            scheduler_module._WORKER_SHIPMENT = None
            scheduler_module._WORKER_PAIR_SHIPMENT = None
            shipment.close()
