"""End-to-end instability pipeline.

Reproduces the paper's experimental pipeline (Appendix A.5):

1. generate the Corpus'17 / Corpus'18 pair;
2. train an embedding pair per (algorithm, dimension, seed), aligning the
   drifted embedding to the base one with orthogonal Procrustes;
3. uniformly quantize the pair to a precision (sharing the clipping
   threshold);
4. train downstream models on each embedding with tied seeds and measure the
   prediction disagreement on the task's test split;
5. compute the embedding distance measures between the pair.

Everything is cached aggressively because the grid study reuses the same
full-precision embeddings across many precisions and tasks.  Caching goes
through the engine's content-addressed :class:`~repro.engine.store.ArtifactStore`:
the default store is in-memory (matching the seed behaviour), and handing the
pipeline a disk-backed store makes every trained embedding pair, quantized
pair, anchor decomposition, measure value and downstream result persistent, so
a warm rerun performs zero retrainings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.memory import bits_per_word
from repro.compression.uniform_quantization import FULL_PRECISION_BITS, compress_pair
from repro.corpus.synthetic import CorpusPair, SyntheticCorpusConfig, SyntheticCorpusGenerator
from repro.corpus.vocabulary import Vocabulary
from repro.embeddings.alignment import align_pair
from repro.embeddings.base import EMBEDDING_ALGORITHMS, Embedding
from repro.engine.store import ArtifactStore, config_hash, default_store
from repro.instability.downstream import classification_disagreement, tagging_disagreement
from repro.linalg import KERNEL_DTYPES, SVD_METHODS, KernelPolicy, default_policy
from repro.measures.base import DecompositionCache
from repro.measures.batch import compute_measure_batch
from repro.measures.eigenspace_instability import (
    AnchorFactors,
    EigenspaceInstability,
    anchor_factors,
)
from repro.measures.eigenspace_overlap import EigenspaceOverlapDistance
from repro.measures.fastpath import build_fast_pair, evaluate_fast
from repro.measures.knn import KNNDistance
from repro.measures.pip_loss import PIPLoss
from repro.measures.semantic_displacement import SemanticDisplacement
from repro.models.bilstm_tagger import BiLSTMTagger
from repro.models.bow_classifier import BowClassifier
from repro.models.cnn_classifier import CNNClassifier
from repro.models.trainer import TrainingConfig
from repro.tasks.datasets import DatasetSplits, train_val_test_split
from repro.tasks.lexicons import build_task_lexicons
from repro.tasks.ner import NERTaskConfig, generate_ner_dataset
from repro.tasks.sentiment import SENTIMENT_TASKS, generate_sentiment_dataset
from repro.telemetry.trace import span
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["PipelineConfig", "InstabilityPipeline", "DownstreamResult"]

#: Task names understood by the pipeline; "conll" is the NER task.
SENTIMENT_TASK_NAMES = tuple(SENTIMENT_TASKS)
NER_TASK_NAME = "conll"


@dataclass(frozen=True)
class PipelineConfig:
    """Configuration of the end-to-end instability pipeline.

    The defaults are scaled down from the paper (whose corpora have 4.5B
    tokens and dimensions up to 800) so that a full grid runs on a laptop in
    minutes; every knob the paper sweeps is still exposed.
    """

    # Corpus.
    corpus: SyntheticCorpusConfig = field(default_factory=lambda: SyntheticCorpusConfig(
        vocab_size=300, n_documents=300, doc_length_mean=80, seed=0,
    ))
    vocab_min_count: int = 2
    #: The paper computes measures over the top-10k words; kept as a knob.
    measure_top_k: int = 10_000
    #: Content-addressed keys of a (base, drifted) corpus-snapshot pair (see
    #: :mod:`repro.corpus.snapshots`).  When set, the pipeline loads both
    #: corpora from the artifact store instead of generating them from
    #: ``corpus``; the keys join every artifact key, so each snapshot pair is
    #: its own cache universe.  Snapshots are first-class grid inputs: the
    #: pipeline stays reconstructible from JSON, so snapshot retrains
    #: distribute over the cluster fleet like any other grid.
    snapshot_pair: tuple[str, str] | None = None

    # Embeddings.
    algorithms: tuple[str, ...] = ("cbow", "glove", "mc")
    dimensions: tuple[int, ...] = (8, 16, 32, 64)
    precisions: tuple[int, ...] = (1, 2, 4, 8, 32)
    seeds: tuple[int, ...] = (0, 1, 2)
    anchor_dim: int | None = None            # defaults to max(dimensions)
    align: bool = True
    share_clip_threshold: bool = True
    embedding_epochs: int = 10
    embedding_window: int = 5

    # Downstream tasks.
    tasks: tuple[str, ...] = ("sst2", "subj", NER_TASK_NAME)
    task_seed: int = 0
    val_fraction: float = 0.15
    test_fraction: float = 0.25
    ner_config: NERTaskConfig = field(default_factory=lambda: NERTaskConfig(
        n_sentences=260, sentence_length=14, entity_density=0.35,
    ))
    downstream_epochs: int = 15
    #: The paper trains its NER BiLSTM with plain SGD; at the scale of the
    #: synthetic substitute Adam converges reliably within the small epoch
    #: budget, so it is the default here (the optimizer remains configurable).
    ner_optimizer: str = "adam"
    ner_epochs: int = 12
    ner_hidden_dim: int = 16
    sentiment_learning_rate: float = 0.05
    ner_learning_rate: float = 0.02
    fine_tune_embeddings: bool = False

    # Measures.
    eis_alpha: float = 3.0
    knn_k: int = 5
    knn_num_queries: int = 300
    #: Truncation rank of the EIS anchor factorization (``None`` = full-rank
    #: thin SVD, the exact paper behaviour).  With a randomized kernel policy
    #: this turns the anchor SVD into a seeded Halko sketch; the factors then
    #: carry residual estimates that feed the fast path's error bounds.
    anchor_rank: int | None = None
    #: Bit width of the quantized "fast pair" representation the serving
    #: layer's quantized-first mode evaluates measures from.
    fast_bits: int = 8

    # Numerical kernels (see repro.linalg).  ``None`` defers to the
    # process-wide default policy (the runner's --kernel-policy/--dtype
    # flags); explicit values pin the choice into this config and its
    # artifact keys.
    kernel_policy: str | None = None        # "exact" | "randomized" | "auto"
    measure_dtype: str | None = None        # "float32" | "float64"

    def __post_init__(self) -> None:
        for algo in self.algorithms:
            if algo not in EMBEDDING_ALGORITHMS:
                raise KeyError(
                    f"unknown embedding algorithm {algo!r}; known: {EMBEDDING_ALGORITHMS.names()}"
                )
        for task in self.tasks:
            if task not in SENTIMENT_TASK_NAMES and task != NER_TASK_NAME:
                raise KeyError(f"unknown task {task!r}")
        if not self.dimensions or not self.precisions or not self.seeds:
            raise ValueError("dimensions, precisions and seeds must be non-empty")
        if self.kernel_policy is not None and self.kernel_policy not in SVD_METHODS:
            raise ValueError(
                f"kernel_policy must be one of {SVD_METHODS} or None, got {self.kernel_policy!r}"
            )
        if self.measure_dtype is not None and self.measure_dtype not in KERNEL_DTYPES:
            raise ValueError(
                f"measure_dtype must be one of {KERNEL_DTYPES} or None, got {self.measure_dtype!r}"
            )
        if self.anchor_rank is not None and self.anchor_rank < 1:
            raise ValueError(f"anchor_rank must be >= 1 or None, got {self.anchor_rank}")
        if self.fast_bits < 1:
            raise ValueError(f"fast_bits must be >= 1, got {self.fast_bits}")
        if self.snapshot_pair is not None:
            if (
                len(self.snapshot_pair) != 2
                or not all(isinstance(k, str) and k for k in self.snapshot_pair)
            ):
                raise ValueError(
                    "snapshot_pair must be a (base_key, drifted_key) pair of "
                    f"non-empty strings, got {self.snapshot_pair!r}"
                )

    @classmethod
    def from_jsonable(cls, payload: dict) -> "PipelineConfig":
        """Rebuild a config from its :func:`~repro.utils.io.to_jsonable` form.

        The cluster ships pipeline configurations between hosts as plain JSON
        (never pickle -- coordinator and workers are mutually untrusted
        network peers), so this is the deserialisation half of that wire
        format.  Nested dataclasses are reconstructed, JSON lists return to
        tuples, and unknown or invalid fields raise (``TypeError`` from the
        constructor, or the usual ``__post_init__`` validation errors).
        """
        data = dict(payload)
        if isinstance(data.get("corpus"), dict):
            data["corpus"] = SyntheticCorpusConfig(**data["corpus"])
        if isinstance(data.get("ner_config"), dict):
            data["ner_config"] = NERTaskConfig(**data["ner_config"])
        for name in ("algorithms", "dimensions", "precisions", "seeds", "tasks",
                     "snapshot_pair"):
            if isinstance(data.get(name), list):
                data[name] = tuple(data[name])
        return cls(**data)

    @property
    def resolved_anchor_dim(self) -> int:
        return self.anchor_dim if self.anchor_dim is not None else max(self.dimensions)

    def resolved_kernel_policy(self) -> KernelPolicy:
        """The kernel policy this config runs under, filling ``None`` fields
        from the process-wide default."""
        return default_policy().with_overrides(
            svd=self.kernel_policy, dtype=self.measure_dtype
        )


@dataclass(frozen=True)
class DownstreamResult:
    """Result of training a downstream model pair on one embedding pair."""

    task: str
    disagreement: float
    accuracy_a: float
    accuracy_b: float

    @property
    def mean_accuracy(self) -> float:
        return 0.5 * (self.accuracy_a + self.accuracy_b)


class InstabilityPipeline:
    """Caches and orchestrates embeddings, compression, tasks and models.

    Parameters
    ----------
    config:
        Pipeline configuration (quick defaults when omitted).
    corpus_pair, generator:
        Optional pre-built corpus sources; when given, the pipeline cannot be
        reconstructed from its config alone, which disables the parallel
        scheduler's worker path (and salts artifact keys, so a persistent
        store is never polluted with artifacts that don't match their config).
    store:
        Artifact store for every expensive artifact.  ``None`` uses the
        process default (in-memory unless configured otherwise).
    warm_corpus_pair:
        A pre-built corpus pair **trusted to be identical** to the one this
        config would generate -- the scheduler's worker warm-up ships the
        parent's pair here (via shared memory) so workers skip regeneration.
        Unlike ``corpus_pair`` it keeps the pipeline reconstructible and the
        artifact keys unsalted.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        *,
        corpus_pair: CorpusPair | None = None,
        generator: SyntheticCorpusGenerator | None = None,
        store: ArtifactStore | None = None,
        warm_corpus_pair: CorpusPair | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.store = store if store is not None else default_store()
        self.reconstructible = corpus_pair is None and generator is None
        self.generator = generator or SyntheticCorpusGenerator(self.config.corpus)
        #: Number of corpus pairs this pipeline actually generated; worker
        #: warm-up tests pin this to zero for warm-started pipelines.
        self.corpus_build_count = 0
        if corpus_pair is not None:
            self.corpus_pair = corpus_pair
        elif warm_corpus_pair is not None:
            self.corpus_pair = warm_corpus_pair
        elif self.config.snapshot_pair is not None:
            # A snapshot-configured pipeline stays reconstructible: the keys
            # are content-addressed, so any host whose store fabric reaches
            # the snapshot bytes (cluster workers fetch them through their
            # remote tier) rebuilds the exact same corpora from JSON alone.
            from repro.corpus.snapshots import load_snapshot

            base_key, drifted_key = self.config.snapshot_pair
            self.corpus_pair = CorpusPair(
                base=load_snapshot(self.store, base_key),
                drifted=load_snapshot(self.store, drifted_key),
                config=self.config.corpus,
            )
        else:
            self.corpus_pair = self.generator.generate_pair(seed=self.config.corpus.seed)
            self.corpus_build_count = 1
        # Salting by the *source objects* (not the pipeline) lets pipelines that
        # share the same custom corpus also share artifacts -- their trained
        # embeddings really are interchangeable -- while pipelines with
        # unrelated custom corpora can never collide in a persistent store.
        self._key_salt = (
            None
            if self.reconstructible
            else f"custom-source-{id(self.corpus_pair):x}-{id(self.generator):x}"
        )
        self.vocab: Vocabulary = self.corpus_pair.shared_vocabulary(
            min_count=self.config.vocab_min_count
        )
        self.lexicons = build_task_lexicons(self.generator, self.vocab)
        self._datasets: dict[str, DatasetSplits] = {}
        self._downstream_results: dict[str, DownstreamResult] = {}
        self._measure_suites: dict[tuple[str, int], dict[str, object]] = {}
        #: Artifact-key memo: hashing re-serialises the whole (frozen) config,
        #: which at serving rates costs more than some measure evaluations.
        #: Safe because PipelineConfig is frozen and the salt is fixed at init.
        self._key_memo: dict[tuple, str] = {}
        #: Number of embedding pairs actually trained (cache misses) and of
        #: downstream models actually fit; warm-cache tests pin these to zero.
        self.embedding_train_count = 0
        self.downstream_train_count = 0
        logger.info(
            "pipeline ready: %d-word vocabulary, %d/%d tokens",
            len(self.vocab),
            self.corpus_pair.base.num_tokens,
            self.corpus_pair.drifted.num_tokens,
        )

    # -- artifact keys -----------------------------------------------------------

    def _memoised_key(self, memo_key: tuple, fields_fn) -> str:
        """Cache ``config_hash(fields_fn())`` under ``memo_key`` for this pipeline."""
        key = self._key_memo.get(memo_key)
        if key is None:
            key = self._key_memo[memo_key] = config_hash(fields_fn())
        return key

    def _corpus_fields(self) -> dict:
        return {
            "corpus": self.config.corpus,
            "vocab_min_count": self.config.vocab_min_count,
            "snapshot_pair": self.config.snapshot_pair,
            "salt": self._key_salt,
        }

    def _embedding_fields(self, algorithm: str, dim: int, seed: int) -> dict:
        fields = self._corpus_fields()
        fields.update(
            algorithm=algorithm,
            dim=int(dim),
            seed=int(seed),
            align=self.config.align,
            epochs=self.config.embedding_epochs,
            window=self.config.embedding_window,
            # The SVD kernel choice (and, for randomized/auto, its knobs)
            # changes the trained vectors of the "svd" algorithm, so it is
            # part of every embedding key (harmlessly conservative for the
            # iterative algorithms).
            kernel_policy=self.config.resolved_kernel_policy().key_fields(),
        )
        return fields

    def _quantized_fields(self, algorithm: str, dim: int, precision: int, seed: int) -> dict:
        fields = self._embedding_fields(algorithm, dim, seed)
        fields.update(
            precision=int(precision),
            share_clip_threshold=self.config.share_clip_threshold,
        )
        return fields

    # -- datasets --------------------------------------------------------------

    def dataset(self, task: str) -> DatasetSplits:
        """Train/val/test splits of a downstream task (built lazily, cached)."""
        if task not in self._datasets:
            if task == NER_TASK_NAME:
                full = generate_ner_dataset(
                    self.config.ner_config, self.lexicons, seed=self.config.task_seed,
                    vocab=self.vocab,
                )
            else:
                full = generate_sentiment_dataset(
                    task, self.lexicons, seed=self.config.task_seed, vocab=self.vocab
                )
            self._datasets[task] = train_val_test_split(
                full,
                val_fraction=self.config.val_fraction,
                test_fraction=self.config.test_fraction,
                seed=self.config.task_seed,
            )
        return self._datasets[task]

    # -- embeddings -------------------------------------------------------------

    def _make_algorithm(self, name: str, dim: int, seed: int):
        cls = EMBEDDING_ALGORITHMS.get(name)
        kwargs = {
            "dim": dim,
            "seed": seed,
            "window_size": self.config.embedding_window,
        }
        if name != "svd":
            kwargs["epochs"] = self.config.embedding_epochs
        else:
            # Resolved here so the model sees one concrete method regardless
            # of whether it came from the config or the process default.
            kwargs["kernel_policy"] = self.config.resolved_kernel_policy().svd
        return cls(**kwargs)

    def embedding_pair(self, algorithm: str, dim: int, seed: int) -> tuple[Embedding, Embedding]:
        """Full-precision (base, drifted) embedding pair, Procrustes-aligned."""
        key = self._memoised_key(
            ("embedding", algorithm, int(dim), int(seed)),
            lambda: self._embedding_fields(algorithm, dim, seed),
        )
        pair = self.store.get_embedding_pair("embedding_pair", key)
        if pair is None:
            with span("pipeline.train", metric="phase", label="train",
                      algorithm=algorithm, dim=int(dim), seed=int(seed)):
                model_a = self._make_algorithm(algorithm, dim, seed)
                model_b = self._make_algorithm(algorithm, dim, seed)
                emb_a = model_a.fit(self.corpus_pair.base, vocab=self.vocab)
                emb_b = model_b.fit(self.corpus_pair.drifted, vocab=self.vocab)
                if self.config.align:
                    # The Procrustes rotation solve dispatches through the kernel
                    # policy (exact for the default/auto policies at embedding
                    # scale; seeded Halko under svd="randomized"), which is
                    # already part of the embedding key above.
                    emb_b = align_pair(
                        emb_a, emb_b, policy=self.config.resolved_kernel_policy()
                    )
                pair = (emb_a, emb_b)
                self.embedding_train_count += 1
                self.store.put_embedding_pair("embedding_pair", key, pair)
            logger.debug("trained %s pair dim=%d seed=%d", algorithm, dim, seed)
        return pair

    def compressed_pair(
        self, algorithm: str, dim: int, precision: int, seed: int
    ) -> tuple[Embedding, Embedding]:
        """Embedding pair quantized to ``precision`` bits (threshold shared)."""
        if precision >= FULL_PRECISION_BITS:
            return self.embedding_pair(algorithm, dim, seed)
        key = self._memoised_key(
            ("quantized", algorithm, int(dim), int(precision), int(seed)),
            lambda: self._quantized_fields(algorithm, dim, precision, seed),
        )
        pair = self.store.get_embedding_pair("quantized_pair", key)
        if pair is None:
            emb_a, emb_b = self.embedding_pair(algorithm, dim, seed)
            with span("pipeline.quantize", metric="phase", label="quantize",
                      algorithm=algorithm, dim=int(dim), precision=int(precision)):
                pair = compress_pair(
                    emb_a, emb_b, precision, share_threshold=self.config.share_clip_threshold
                )
                self.store.put_embedding_pair("quantized_pair", key, pair)
        return pair

    def anchors(self, algorithm: str, seed: int) -> tuple[Embedding, Embedding]:
        """Anchor embeddings for the EIS measure: highest-dim, full precision."""
        return self.embedding_pair(algorithm, self.config.resolved_anchor_dim, seed)

    # -- measures ----------------------------------------------------------------

    def anchor_decomposition(self, algorithm: str, seed: int) -> AnchorFactors:
        """SVD factors of the aligned anchor pair, shared across grid cells.

        One decomposition of the (largest-dimension) anchors serves the EIS
        evaluation of every (dimension, precision) cell with the same
        (algorithm, seed); with a persistent store it also survives reruns.
        """
        policy = self.config.resolved_kernel_policy()

        def fields_fn() -> dict:
            fields = self._embedding_fields(algorithm, self.config.resolved_anchor_dim, seed)
            fields.update(kind="anchor-svd", alpha=self.config.eis_alpha,
                          top_k=self.config.measure_top_k, dtype=policy.dtype)
            if self.config.anchor_rank is not None:
                # Included only when set so default-config keys match the seed.
                fields.update(anchor_rank=self.config.anchor_rank)
            return fields

        key = self._memoised_key(("anchor-svd", algorithm, int(seed)), fields_fn)
        # All pipeline embeddings share one vocabulary, so the aligned word
        # order of any pair is the vocabulary's frequency order.
        words = tuple(self.vocab.words[: self.config.measure_top_k])
        arrays = self.store.get_arrays("decomposition", key)
        if arrays is None:
            anchor_a, anchor_b = self.anchors(algorithm, seed)
            with span("pipeline.anchor_svd", metric="phase", label="anchor_svd",
                      algorithm=algorithm, seed=int(seed)):
                ra, rb = Embedding.aligned_pair(
                    anchor_a, anchor_b, top_k=self.config.measure_top_k
                )
                factors = anchor_factors(
                    ra.vectors, rb.vectors, alpha=self.config.eis_alpha,
                    words=tuple(ra.vocab.words), policy=policy,
                    rank=self.config.anchor_rank,
                )
            payload = {
                "P": factors.P, "Ra": factors.Ra,
                "P_t": factors.P_t, "Ra_t": factors.Ra_t,
            }
            if self.config.anchor_rank is not None:
                payload["residuals"] = np.array(
                    [factors.residual, factors.residual_t], dtype=np.float64
                )
            self.store.put_arrays("decomposition", key, payload)
            return factors
        # Older (full-rank) artifacts carry no residual member: exact factors
        # have zero truncation residual by construction.
        residuals = np.asarray(arrays.get("residuals", (0.0, 0.0)), dtype=np.float64)
        return AnchorFactors(
            P=arrays["P"], Ra=arrays["Ra"], P_t=arrays["P_t"], Ra_t=arrays["Ra_t"],
            words=words,
            residual=float(residuals[0]), residual_t=float(residuals[1]),
        )

    def measure_suite(self, algorithm: str, seed: int) -> dict[str, object]:
        """The five embedding distance measures, with anchors resolved (cached)."""
        suite_key = (algorithm, int(seed))
        if suite_key not in self._measure_suites:
            anchor_a, anchor_b = self.anchors(algorithm, seed)
            self._measure_suites[suite_key] = {
                "eis": EigenspaceInstability(
                    anchor_a, anchor_b, alpha=self.config.eis_alpha,
                    factors=self.anchor_decomposition(algorithm, seed),
                    policy=self.config.resolved_kernel_policy(),
                    rank=self.config.anchor_rank,
                ),
                "1-knn": KNNDistance(
                    k=self.config.knn_k, num_queries=self.config.knn_num_queries, seed=0
                ),
                "semantic-displacement": SemanticDisplacement(),
                "pip": PIPLoss(),
                "1-eigenspace-overlap": EigenspaceOverlapDistance(),
            }
        return self._measure_suites[suite_key]

    def measures_key(
        self, algorithm: str, dim: int, precision: int, seed: int,
        *, measures: tuple[str, ...] | None = None,
    ) -> str:
        """Artifact key of one measure evaluation.

        Public so callers that deduplicate work by artifact identity (the
        serving layer's single-flight coalescing) agree exactly with the
        store's caching: two requests with the same key are the same
        computation.
        """
        selected = tuple(sorted(measures)) if measures is not None else None

        def fields_fn() -> dict:
            policy = self.config.resolved_kernel_policy()
            fields = self._quantized_fields(algorithm, dim, precision, seed)
            fields.update(
                kind="measures",
                measures=list(selected) if selected is not None else None,
                top_k=self.config.measure_top_k,
                eis_alpha=self.config.eis_alpha,
                knn_k=self.config.knn_k,
                knn_num_queries=self.config.knn_num_queries,
                anchor_dim=self.config.resolved_anchor_dim,
                dtype=policy.dtype,
            )
            if self.config.anchor_rank is not None:
                fields.update(anchor_rank=self.config.anchor_rank)
            return fields

        return self._memoised_key(
            ("measures", algorithm, int(dim), int(precision), int(seed), selected),
            fields_fn,
        )

    def compute_measures(
        self, algorithm: str, dim: int, precision: int, seed: int,
        *, measures: tuple[str, ...] | None = None,
        cache: "DecompositionCache | None" = None,
    ) -> dict[str, float]:
        """Evaluate embedding distance measures on a compressed pair.

        The suite runs as a batch sharing one vocabulary alignment and one
        :class:`~repro.measures.base.DecompositionCache`, so each embedding
        matrix is decomposed once for EIS, eigenspace overlap and PIP loss
        together; values are cached in the artifact store.  ``cache`` lets a
        long-lived caller (the serving layer) share one bounded decomposition
        cache across many requests instead of one per batch.
        """
        policy = self.config.resolved_kernel_policy()
        key = self.measures_key(algorithm, dim, precision, seed, measures=measures)
        cached = self.store.get_json("measures", key)
        if cached is not None:
            return dict(cached)
        emb_a, emb_b = self.compressed_pair(algorithm, dim, precision, seed)
        suite = self.measure_suite(algorithm, seed)
        selected = {
            name: measure for name, measure in suite.items()
            if measures is None or name in measures
        }
        with span("pipeline.measures", metric="phase", label="measures",
                  algorithm=algorithm, dim=int(dim), precision=int(precision),
                  seed=int(seed)):
            batch = compute_measure_batch(
                selected, emb_a, emb_b, top_k=self.config.measure_top_k, policy=policy,
                cache=cache,
            )
            out = batch.values
            self.store.put_json("measures", key, out)
        return out

    # -- fast (quantized-first) measures ----------------------------------------

    def fast_pair_key(self, algorithm: str, dim: int, precision: int, seed: int) -> str:
        """Artifact key of the quantized fast-pair representation of one cell."""

        def fields_fn() -> dict:
            fields = self._quantized_fields(algorithm, dim, precision, seed)
            fields.update(
                kind="fast_pair",
                fast_bits=self.config.fast_bits,
                top_k=self.config.measure_top_k,
                # The artifact embeds precomputed knn stats, so their
                # parameters are part of its identity.
                knn_k=self.config.knn_k,
                knn_num_queries=self.config.knn_num_queries,
            )
            return fields

        return self._memoised_key(
            ("fast_pair", algorithm, int(dim), int(precision), int(seed)), fields_fn
        )

    def fast_pair(
        self, algorithm: str, dim: int, precision: int, seed: int
    ) -> dict[str, np.ndarray]:
        """Quantized float32 snapshot of a cell's aligned pair (cached).

        The snapshot (see :func:`~repro.measures.fastpath.build_fast_pair`)
        bundles the ``fast_bits``-quantized matrices with exactly-computed
        residual statistics; it is its own content-addressed artifact kind, so
        warm serving processes evaluate fast measures without ever touching
        the float64 pair.
        """
        key = self.fast_pair_key(algorithm, dim, precision, seed)
        arrays = self.store.get_arrays("fast_pair", key)
        if arrays is None:
            emb_a, emb_b = self.compressed_pair(algorithm, dim, precision, seed)
            with span("pipeline.fast_pair", metric="phase", label="fast_pair",
                      algorithm=algorithm, dim=int(dim), precision=int(precision)):
                arrays = build_fast_pair(
                    emb_a, emb_b,
                    top_k=self.config.measure_top_k,
                    bits=self.config.fast_bits,
                    share_threshold=self.config.share_clip_threshold,
                    knn_k=self.config.knn_k,
                    knn_num_queries=self.config.knn_num_queries,
                )
                self.store.put_arrays("fast_pair", key, arrays)
        return arrays

    def fast_measures_key(
        self, algorithm: str, dim: int, precision: int, seed: int,
        *, measures: tuple[str, ...] | None = None,
    ) -> str:
        """Artifact key of one fast (quantized-first) measure evaluation."""
        selected = tuple(sorted(measures)) if measures is not None else None

        def fields_fn() -> dict:
            fields = self._quantized_fields(algorithm, dim, precision, seed)
            fields.update(
                kind="fast_measures",
                measures=list(selected) if selected is not None else None,
                fast_bits=self.config.fast_bits,
                top_k=self.config.measure_top_k,
                eis_alpha=self.config.eis_alpha,
                knn_k=self.config.knn_k,
                knn_num_queries=self.config.knn_num_queries,
                anchor_dim=self.config.resolved_anchor_dim,
            )
            if self.config.anchor_rank is not None:
                fields.update(anchor_rank=self.config.anchor_rank)
            return fields

        return self._memoised_key(
            ("fast_measures", algorithm, int(dim), int(precision), int(seed), selected),
            fields_fn,
        )

    def compute_measures_fast(
        self, algorithm: str, dim: int, precision: int, seed: int,
        *, measures: tuple[str, ...] | None = None,
    ) -> dict[str, dict[str, float]]:
        """Approximate measure values plus per-measure error bounds.

        Evaluates the suite from the cell's quantized fast pair (see
        :mod:`repro.measures.fastpath`); returns ``{"values": ..., "bounds":
        ...}`` where every bound satisfies ``|fast - exact| <= bound`` against
        :meth:`compute_measures` of the same cell.  The result is cached under
        its own artifact kind -- it is tolerance-independent, so the serving
        layer applies its escalation threshold on top without re-computing.
        """
        key = self.fast_measures_key(algorithm, dim, precision, seed, measures=measures)
        cached = self.store.get_json("fast_measures", key)
        if cached is not None:
            return {k: dict(v) for k, v in cached.items()}
        data = self.fast_pair(algorithm, dim, precision, seed)
        selected = tuple(measures) if measures is not None else None
        factors = None
        if selected is None or "eis" in selected:
            factors = self.anchor_decomposition(algorithm, seed)
        with span("pipeline.fast_measures", metric="phase", label="fast_measures",
                  algorithm=algorithm, dim=int(dim), precision=int(precision)):
            values, bounds = evaluate_fast(
                data,
                measures=selected,
                factors=factors,
                alpha=self.config.eis_alpha,
                knn_k=self.config.knn_k,
                knn_num_queries=self.config.knn_num_queries,
            )
            out = {"values": values, "bounds": bounds}
            self.store.put_json("fast_measures", key, out)
        return out

    # -- downstream models ----------------------------------------------------------

    def _sentiment_config(self, seed: int, *, learning_rate: float | None = None) -> TrainingConfig:
        return TrainingConfig(
            learning_rate=learning_rate or self.config.sentiment_learning_rate,
            epochs=self.config.downstream_epochs,
            optimizer="adam",
            patience=4,
            fine_tune_embeddings=self.config.fine_tune_embeddings,
        ).with_seed(seed)

    def _ner_config(self, seed: int, *, learning_rate: float | None = None) -> TrainingConfig:
        return TrainingConfig(
            learning_rate=learning_rate or self.config.ner_learning_rate,
            epochs=self.config.ner_epochs,
            optimizer=self.config.ner_optimizer,
            patience=None,
            anneal_factor=0.5,
            fine_tune_embeddings=self.config.fine_tune_embeddings,
        ).with_seed(seed)

    def _train_classifier(
        self, embedding: Embedding, task: str, seed: int,
        *, model_type: str = "bow", learning_rate: float | None = None,
        init_seed: int | None = None, sampling_seed: int | None = None,
    ):
        splits = self.dataset(task)
        cfg = self._sentiment_config(seed, learning_rate=learning_rate)
        if init_seed is not None or sampling_seed is not None:
            from dataclasses import replace

            cfg = replace(
                cfg,
                init_seed=init_seed if init_seed is not None else cfg.init_seed,
                sampling_seed=sampling_seed if sampling_seed is not None else cfg.sampling_seed,
            )
        if model_type == "bow":
            model = BowClassifier(embedding, num_classes=2, config=cfg)
        elif model_type == "cnn":
            model = CNNClassifier(embedding, num_classes=2, config=cfg)
        else:
            raise ValueError(f"unknown classifier type {model_type!r}")
        with span("pipeline.downstream_train", metric="phase", label="downstream",
                  task=task, model=model_type, seed=int(seed)):
            model.fit(splits.train, splits.val)
        self.downstream_train_count += 1
        return model

    def _train_tagger(
        self, embedding: Embedding, seed: int,
        *, use_crf: bool = False, learning_rate: float | None = None,
        init_seed: int | None = None, sampling_seed: int | None = None,
    ) -> BiLSTMTagger:
        splits = self.dataset(NER_TASK_NAME)
        cfg = self._ner_config(seed, learning_rate=learning_rate)
        if init_seed is not None or sampling_seed is not None:
            from dataclasses import replace

            cfg = replace(
                cfg,
                init_seed=init_seed if init_seed is not None else cfg.init_seed,
                sampling_seed=sampling_seed if sampling_seed is not None else cfg.sampling_seed,
            )
        tagger = BiLSTMTagger(
            embedding,
            num_tags=splits.train.num_tags,
            hidden_dim=self.config.ner_hidden_dim,
            use_crf=use_crf,
            config=cfg,
        )
        with span("pipeline.downstream_train", metric="phase", label="downstream",
                  task=NER_TASK_NAME, model="bilstm", seed=int(seed)):
            tagger.fit(splits.train, splits.val)
        self.downstream_train_count += 1
        return tagger

    def downstream_result(
        self,
        task: str,
        emb_a: Embedding,
        emb_b: Embedding,
        seed: int,
        *,
        model_type: str = "bow",
        use_crf: bool = False,
        learning_rate: float | None = None,
        init_seed_b: int | None = None,
        sampling_seed_b: int | None = None,
    ) -> DownstreamResult:
        """Train the downstream model pair and measure prediction disagreement.

        ``init_seed_b`` / ``sampling_seed_b`` override the seeds of the second
        model only, reproducing the "relaxed seed constraint" study of
        Appendix E.3 / Figure 14a.
        """
        splits = self.dataset(task)
        if task == NER_TASK_NAME:
            tagger_a = self._train_tagger(emb_a, seed, use_crf=use_crf, learning_rate=learning_rate)
            tagger_b = self._train_tagger(
                emb_b, seed, use_crf=use_crf, learning_rate=learning_rate,
                init_seed=init_seed_b, sampling_seed=sampling_seed_b,
            )
            disagreement = tagging_disagreement(tagger_a, tagger_b, splits.test, entity_only=True)
            return DownstreamResult(
                task=task,
                disagreement=disagreement,
                accuracy_a=tagger_a.entity_f1(splits.test),
                accuracy_b=tagger_b.entity_f1(splits.test),
            )
        model_a = self._train_classifier(
            emb_a, task, seed, model_type=model_type, learning_rate=learning_rate
        )
        model_b = self._train_classifier(
            emb_b, task, seed, model_type=model_type, learning_rate=learning_rate,
            init_seed=init_seed_b, sampling_seed=sampling_seed_b,
        )
        disagreement = classification_disagreement(model_a, model_b, splits.test)
        return DownstreamResult(
            task=task,
            disagreement=disagreement,
            accuracy_a=model_a.accuracy(splits.test),
            accuracy_b=model_b.accuracy(splits.test),
        )

    def evaluate(
        self,
        task: str,
        algorithm: str,
        dim: int,
        precision: int,
        seed: int,
        *,
        model_type: str = "bow",
        use_crf: bool = False,
    ) -> DownstreamResult:
        """Cached end-to-end evaluation of one grid point."""
        fields = self._quantized_fields(algorithm, dim, precision, seed)
        fields.update(
            kind="downstream",
            task=task,
            model_type=model_type,
            use_crf=use_crf,
            task_seed=self.config.task_seed,
            val_fraction=self.config.val_fraction,
            test_fraction=self.config.test_fraction,
            downstream_epochs=self.config.downstream_epochs,
            sentiment_learning_rate=self.config.sentiment_learning_rate,
            ner=self.config.ner_config,
            ner_optimizer=self.config.ner_optimizer,
            ner_epochs=self.config.ner_epochs,
            ner_hidden_dim=self.config.ner_hidden_dim,
            ner_learning_rate=self.config.ner_learning_rate,
            fine_tune=self.config.fine_tune_embeddings,
        )
        key = config_hash(fields)
        payload = self.store.get_json("downstream", key)
        if payload is not None:
            # Reconstruct once and memoise so repeated lookups keep identity.
            result = self._downstream_results.get(key)
            if result is None:
                result = DownstreamResult(
                    task=payload["task"],
                    disagreement=payload["disagreement"],
                    accuracy_a=payload["accuracy_a"],
                    accuracy_b=payload["accuracy_b"],
                )
                self._downstream_results[key] = result
            return result
        emb_a, emb_b = self.compressed_pair(algorithm, dim, precision, seed)
        result = self.downstream_result(
            task, emb_a, emb_b, seed, model_type=model_type, use_crf=use_crf
        )
        self._downstream_results[key] = result
        self.store.put_json("downstream", key, result)
        return result

    # -- bookkeeping ------------------------------------------------------------------

    @staticmethod
    def memory(dim: int, precision: int) -> int:
        return bits_per_word(dim, precision)
