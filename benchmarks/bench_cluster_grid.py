"""Benchmark the distributed grid path: 1 vs 2 workers, cold vs warm.

Boots a real coordinator (the serving API on an ephemeral port) and drives it
with in-process ``repro-worker`` loops over real HTTP, reporting:

1. ``cold 1w``  -- a cold distributed grid executed by a single worker;
2. ``warm 1w``  -- the same grid rerun against the warm cluster store;
3. ``cold 2w``  -- the same grid cold again (fresh coordinator + workers),
   leased to two workers pulling concurrently.

Invariants asserted (the script exits non-zero on violation, so CI smokes it):

* every distributed run is bit-identical to the serial ``GridEngine.run()``;
* the warm rerun performs **zero** new trainings on any worker;
* no embedding pair is trained twice cluster-wide (the coordinator's
  ancestry gate), with 1 worker or with 2.

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster_grid.py --quick
    PYTHONPATH=src python benchmarks/bench_cluster_grid.py --output BENCH_cluster.json
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import sys
import threading
import time
import warnings
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.reporting import format_table  # noqa: E402
from repro.cluster import ClusterWorker  # noqa: E402
from repro.corpus.synthetic import SyntheticCorpusConfig  # noqa: E402
from repro.engine import GridEngine  # noqa: E402
from repro.instability.pipeline import PipelineConfig  # noqa: E402
from repro.serving import ServiceConfig, StabilityService  # noqa: E402
from repro.serving.api import StabilityAPIServer  # noqa: E402

from conftest import write_benchmark_results  # noqa: E402


def bench_config(quick: bool) -> PipelineConfig:
    """Two seeds = two independent ancestries, so two workers can overlap."""
    if quick:
        return PipelineConfig(
            corpus=SyntheticCorpusConfig(
                vocab_size=120, n_documents=60, doc_length_mean=30, seed=7
            ),
            algorithms=("svd",),
            dimensions=(4, 6),
            precisions=(1, 32),
            seeds=(0, 1),
            tasks=("sst2",),
            embedding_epochs=2,
            downstream_epochs=3,
            ner_epochs=2,
        )
    return PipelineConfig(
        corpus=SyntheticCorpusConfig(
            vocab_size=250, n_documents=200, doc_length_mean=60, seed=0
        ),
        algorithms=("svd",),
        dimensions=(8, 16),
        precisions=(1, 4, 32),
        seeds=(0, 1),
        tasks=("sst2",),
        embedding_epochs=6,
        downstream_epochs=8,
    )


class LiveCluster:
    """A coordinator on an ephemeral port plus N in-process worker loops."""

    def __init__(self, config: PipelineConfig, n_workers: int) -> None:
        self.service = StabilityService(config, config=ServiceConfig(lease_ttl=30))
        self.api = StabilityAPIServer(self.service, port=0)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run_server() -> None:
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.api.start())
            started.set()
            self.loop.run_forever()

        self.server_thread = threading.Thread(target=run_server, daemon=True)
        self.server_thread.start()
        assert started.wait(timeout=30), "coordinator failed to start"
        url = f"http://127.0.0.1:{self.api.port}"
        self.workers = [
            ClusterWorker(url, worker_id=f"bench-w{i}", poll_interval=0.02)
            for i in range(n_workers)
        ]
        self.worker_threads = [
            threading.Thread(target=w.run, daemon=True) for w in self.workers
        ]
        for thread in self.worker_threads:
            thread.start()

    def stream_grid(self) -> list[dict]:
        conn = http.client.HTTPConnection("127.0.0.1", self.api.port, timeout=600)
        conn.request("GET", "/grid?distributed=true")
        response = conn.getresponse()
        assert response.status == 200, response.status
        rows = [json.loads(line) for line in response.read().decode().strip().splitlines()]
        conn.close()
        return rows

    def trainings(self) -> tuple[int, int]:
        embedding = sum(w.stats()["embedding_train_count"] for w in self.workers)
        downstream = sum(w.stats()["downstream_train_count"] for w in self.workers)
        return embedding, downstream

    def close(self) -> None:
        for worker in self.workers:
            worker.stop()
        for thread in self.worker_threads:
            thread.join(timeout=30)
        asyncio.run_coroutine_threadsafe(self.api.stop(), self.loop).result(timeout=10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.server_thread.join(timeout=10)
        self.service.close()


def run_benchmark(quick: bool):
    config = bench_config(quick)
    unique_pairs = len(config.algorithms) * len(config.dimensions) * len(config.seeds)
    expected = GridEngine(config).run(with_measures=True)
    expected_rows = [record.to_row() for record in expected]
    rows = []

    # -- one worker: cold, then warm against the same cluster store ------------
    one = LiveCluster(config, n_workers=1)
    try:
        start = time.perf_counter()
        cold_rows = one.stream_grid()
        cold_1w = time.perf_counter() - start
        assert cold_rows == expected_rows, "1-worker run diverged from the serial grid"
        embedding_cold, downstream_cold = one.trainings()
        assert embedding_cold == unique_pairs, (
            f"duplicate trainings: {embedding_cold} != {unique_pairs} unique pairs"
        )

        start = time.perf_counter()
        warm_rows = one.stream_grid()
        warm_1w = time.perf_counter() - start
        assert warm_rows == expected_rows, "warm rerun diverged"
        assert one.trainings() == (embedding_cold, downstream_cold), (
            "warm rerun trained something"
        )
        assert warm_1w < cold_1w, "warm distributed rerun was not faster than cold"
    finally:
        one.close()
    rows.append({"mode": "cold 1 worker", "cells": len(expected),
                 "total_s": round(cold_1w, 3)})
    rows.append({"mode": "warm 1 worker", "cells": len(expected),
                 "total_s": round(warm_1w, 3)})

    # -- two workers: cold again, concurrent ancestries --------------------------
    two = LiveCluster(config, n_workers=2)
    try:
        start = time.perf_counter()
        cold2_rows = two.stream_grid()
        cold_2w = time.perf_counter() - start
        assert cold2_rows == expected_rows, "2-worker run diverged from the serial grid"
        embedding_two, _ = two.trainings()
        assert embedding_two == unique_pairs, (
            f"duplicate trainings with 2 workers: {embedding_two} != {unique_pairs}"
        )
    finally:
        two.close()
    rows.append({"mode": "cold 2 workers", "cells": len(expected),
                 "total_s": round(cold_2w, 3)})

    summary = {
        "cells": len(expected),
        "unique_pairs": unique_pairs,
        "cold_1w_s": round(cold_1w, 3),
        "warm_1w_s": round(warm_1w, 3),
        "cold_2w_s": round(cold_2w, 3),
        "warm_speedup": round(cold_1w / max(warm_1w, 1e-9), 2),
        "two_worker_speedup": round(cold_1w / max(cold_2w, 1e-9), 2),
    }
    return rows, summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized grid")
    parser.add_argument("--output", default=None, help="write a JSON summary here")
    args = parser.parse_args(argv)

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        rows, summary = run_benchmark(args.quick)

    print(format_table(rows))
    print(
        f"\nwarm speedup {summary['warm_speedup']}x, "
        f"2-worker vs 1-worker cold {summary['two_worker_speedup']}x "
        f"({summary['cells']} cells, {summary['unique_pairs']} unique pairs, "
        f"zero duplicate trainings)"
    )
    results = write_benchmark_results(
        "cluster", summary=summary, rows=rows, output=args.output
    )
    print(f"results -> {results}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
