"""Blocked GEMM-based kernels behind the embedding distance measures.

These kernels are the hot loops of the measure suite, written so that

* no ``(n, n)`` intermediate is ever materialised -- cosine similarities are
  computed in query blocks of at most ``block_size`` rows, and the Gram
  Frobenius terms of the PIP loss reduce through ``(d, d)`` products only;
* no Python-level per-row loop survives -- the k-NN set overlap is a single
  vectorised ``searchsorted`` over row-offset-encoded neighbour ids;
* scalar reductions accumulate in float64 regardless of the working dtype,
  so the float32 kernel policy loses precision only inside the GEMMs, not in
  the final sums.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "normalize_rows",
    "cosine_top_k",
    "row_set_overlap",
    "gram_frobenius_diff_sq",
]


def normalize_rows(X: np.ndarray) -> np.ndarray:
    """Row-normalised copy of ``X`` in its own dtype (zero rows stay zero)."""
    X = np.asarray(X)
    norms = np.linalg.norm(X, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return X / norms


def cosine_top_k(
    X: np.ndarray,
    queries: np.ndarray,
    k: int,
    *,
    block_size: int = 512,
) -> np.ndarray:
    """Indices of the ``k`` most cosine-similar rows to each query row.

    The query rows themselves are excluded.  Similarities are computed one
    query block at a time, so peak extra memory is ``block_size * n`` floats
    instead of ``len(queries) * n``; within a block the top-k is selected with
    ``argpartition`` (order inside the top-k is unspecified -- callers use set
    semantics).  Per-row results are independent of the blocking, so any
    ``block_size`` yields identical neighbour sets.
    """
    X = np.asarray(X)
    queries = np.asarray(queries, dtype=np.int64)
    n = X.shape[0]
    k = min(int(k), n - 1)
    if k < 1:
        raise ValueError("k must be >= 1 and the matrix must have >= 2 rows")
    block_size = max(int(block_size), 1)
    normed = normalize_rows(X)
    out = np.empty((len(queries), k), dtype=np.int64)
    for start in range(0, len(queries), block_size):
        block = queries[start:start + block_size]
        sims = normed[block] @ normed.T                       # (block, n)
        sims[np.arange(len(block)), block] = -np.inf
        out[start:start + len(block)] = np.argpartition(-sims, kth=k - 1, axis=1)[:, :k]
    return out


def row_set_overlap(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Size of the row-wise set intersection of two integer id matrices.

    ``a`` and ``b`` are ``(q, k)`` arrays of non-negative ids whose rows are
    sets (no duplicates within a row, as produced by :func:`cosine_top_k`).
    Equivalent to ``len(np.intersect1d(a[i], b[i]))`` per row, but vectorised:
    each row is shifted into its own disjoint id range, after which one global
    ``searchsorted`` answers every membership query at once.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[0] != b.shape[0]:
        raise ValueError(f"need (q, k) id matrices with equal q, got {a.shape} and {b.shape}")
    q = a.shape[0]
    if a.size == 0 or b.size == 0:
        return np.zeros(q, dtype=np.int64)
    if a.min() < 0 or b.min() < 0:
        raise ValueError("ids must be non-negative")
    stride = int(max(a.max(), b.max())) + 1
    offsets = np.arange(q, dtype=np.int64)[:, np.newaxis] * stride
    # Row-sorted + strictly increasing row offsets => globally sorted.
    flat_b = np.sort(b + offsets, axis=1).ravel()
    flat_a = (a + offsets).ravel()
    pos = np.searchsorted(flat_b, flat_a)
    found = flat_b[np.minimum(pos, flat_b.size - 1)] == flat_a
    return found.reshape(q, a.shape[1]).sum(axis=1)


def gram_frobenius_diff_sq(
    X: np.ndarray, Y: np.ndarray, *, block_rows: int | None = None
) -> float:
    """``||X X^T - Y Y^T||_F^2`` without materialising an ``(n, n)`` Gram matrix.

    Uses ``||X X^T - Y Y^T||_F^2 = ||X^T X||_F^2 + ||Y^T Y||_F^2
    - 2 ||X^T Y||_F^2``; the three ``(d, d)``/``(d, d')`` products are
    optionally accumulated over row blocks (``block_rows``) so very tall
    matrices never need one monolithic GEMM workspace, and every final
    reduction runs in float64.
    """
    X = np.asarray(X)
    Y = np.asarray(Y)
    if X.shape[0] != Y.shape[0]:
        raise ValueError(f"row counts must match, got {X.shape[0]} and {Y.shape[0]}")

    def cross(A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if block_rows is None or A.shape[0] <= block_rows:
            return A.T @ B
        acc = np.zeros((A.shape[1], B.shape[1]), dtype=np.float64)
        for start in range(0, A.shape[0], block_rows):
            acc += A[start:start + block_rows].T @ B[start:start + block_rows]
        return acc

    xtx = cross(X, X)
    yty = cross(Y, Y)
    xty = cross(X, Y)
    return float(
        np.sum(xtx**2, dtype=np.float64)
        + np.sum(yty**2, dtype=np.float64)
        - 2.0 * np.sum(xty**2, dtype=np.float64)
    )
