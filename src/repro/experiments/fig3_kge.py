"""Figure 3 and Figure 10: knowledge-graph embedding stability vs memory.

Section 6.1 of the paper trains TransE on FB15K and on FB15K-95 (95% of the
training triplets), sweeps the embedding dimension and the quantization
precision, and measures

* unstable-rank@10 on link prediction, and
* prediction disagreement on triplet classification (thresholds tuned on the
  95% graph and shared with the full graph; Figure 10 re-tunes them per
  dataset).

The expected shape: both instability metrics decrease as memory increases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.memory import bits_per_word
from repro.experiments.base import ExperimentResult
from repro.instability.downstream import prediction_disagreement, unstable_rank_at_k
from repro.kge.evaluation import link_prediction_ranks, relation_thresholds, triplet_classification
from repro.kge.graph import SyntheticKGConfig, generate_knowledge_graph
from repro.kge.transe import TransEModel, quantize_kg_embedding

__all__ = ["KGEExperimentConfig", "run"]


@dataclass(frozen=True)
class KGEExperimentConfig:
    """Configuration of the KGE stability experiment."""

    graph: SyntheticKGConfig = field(default_factory=lambda: SyntheticKGConfig(
        n_entities=200, n_relations=10, n_triplets=2500,
    ))
    dimensions: tuple[int, ...] = (4, 8, 16, 32)
    precisions: tuple[int, ...] = (1, 4, 32)
    seeds: tuple[int, ...] = (0,)
    subsample_fraction: float = 0.95
    epochs: int = 40
    learning_rate: float = 0.02
    per_dataset_thresholds: bool = False


def run(config: KGEExperimentConfig | None = None) -> ExperimentResult:
    """Reproduce the KGE stability-memory sweep (Figure 3; Figure 10 via the flag)."""
    cfg = config or KGEExperimentConfig()
    kg_full = generate_knowledge_graph(cfg.graph)
    kg_sub = kg_full.subsample_train(cfg.subsample_fraction, seed=cfg.graph.seed)

    rows = []
    for seed in cfg.seeds:
        for dim in cfg.dimensions:
            model = TransEModel(
                dim=dim, epochs=cfg.epochs, learning_rate=cfg.learning_rate, seed=seed
            )
            emb_sub = model.fit(kg_sub)
            emb_full = TransEModel(
                dim=dim, epochs=cfg.epochs, learning_rate=cfg.learning_rate, seed=seed
            ).fit(kg_full)
            for precision in cfg.precisions:
                q_sub = quantize_kg_embedding(emb_sub, precision)
                q_full = quantize_kg_embedding(emb_full, precision)

                lp_sub = link_prediction_ranks(q_sub, kg_full)
                lp_full = link_prediction_ranks(q_full, kg_full)
                rank_instability = unstable_rank_at_k(lp_sub.ranks, lp_full.ranks, k=10)

                thr_sub = relation_thresholds(q_sub, kg_full, seed=seed)
                thr_full = (
                    relation_thresholds(q_full, kg_full, seed=seed)
                    if cfg.per_dataset_thresholds
                    else thr_sub
                )
                tc_sub = triplet_classification(q_sub, kg_full, thresholds=thr_sub, seed=seed)
                tc_full = triplet_classification(q_full, kg_full, thresholds=thr_full, seed=seed)
                disagreement = prediction_disagreement(tc_sub.predictions, tc_full.predictions)

                rows.append(
                    {
                        "dimension": dim,
                        "precision": precision,
                        "seed": seed,
                        "memory_bits_per_vector": bits_per_word(dim, precision),
                        "unstable_rank_at_10_pct": rank_instability,
                        "triplet_disagreement_pct": disagreement,
                        "mean_rank_95": lp_sub.mean_rank,
                        "mean_rank_full": lp_full.mean_rank,
                        "triplet_accuracy_95": tc_sub.accuracy,
                        "triplet_accuracy_full": tc_full.accuracy,
                    }
                )

    # Shape check: averaged over the low-memory half vs the high-memory half of
    # the sweep, instability should not increase with memory.  (Comparing the
    # single extreme points is too noisy at the synthetic scale; the paper's
    # claim is about the overall trend.)
    by_memory = sorted(rows, key=lambda r: r["memory_bits_per_vector"])
    summary = {}
    if len(by_memory) >= 2:
        half = max(len(by_memory) // 2, 1)
        low, high = by_memory[:half], by_memory[-half:]

        def mean_of(group, key):
            return float(np.mean([r[key] for r in group]))

        rank_low = mean_of(low, "unstable_rank_at_10_pct")
        rank_high = mean_of(high, "unstable_rank_at_10_pct")
        triplet_low = mean_of(low, "triplet_disagreement_pct")
        triplet_high = mean_of(high, "triplet_disagreement_pct")
        summary = {
            "unstable_rank_low_vs_high_memory": (rank_low, rank_high),
            "triplet_disagreement_low_vs_high_memory": (triplet_low, triplet_high),
            "instability_decreases_with_memory": bool(
                (rank_low >= rank_high) or (triplet_low >= triplet_high)
            ),
        }
    name = "figure-10-kge-per-dataset-thresholds" if cfg.per_dataset_thresholds else "figure-3-kge"
    return ExperimentResult(name=name, rows=rows, summary=summary)
