"""Figures 7-8 (Appendix D.2): quality-memory and quality-stability tradeoffs.

Besides instability, the paper tracks downstream *quality* (test accuracy /
F1) across the same dimension-precision grid, finding that quality rises with
memory (driven mostly by dimension) and that, for NER, lower stability
co-occurs with lower quality.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.correlation import spearman_correlation
from repro.experiments.base import ExperimentResult, resolve_engine, resolve_pipeline
from repro.instability.grid import average_over_seeds
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig

__all__ = ["run"]


def run(
    pipeline: InstabilityPipeline | PipelineConfig | None = None,
    *,
    tasks: tuple[str, ...] | None = None,
    n_workers: int | None = None,
) -> ExperimentResult:
    """Reproduce the quality-tradeoff panels (Figures 7-8)."""
    pipe = resolve_pipeline(pipeline)
    records = resolve_engine(pipe, n_workers=n_workers).run(tasks=tasks, with_measures=False)
    averaged = average_over_seeds(records)
    rows = [
        {
            "task": r.task,
            "algorithm": r.algorithm,
            "dimension": r.dim,
            "precision": r.precision,
            "memory_bits_per_word": r.memory,
            "disagreement_pct": r.disagreement,
            "quality": r.mean_accuracy,
        }
        for r in sorted(averaged, key=lambda r: (r.task, r.algorithm, r.memory))
    ]

    # Summary correlations: quality vs memory (expected positive) and quality
    # vs disagreement (expected negative, clearest for NER in the paper).
    memories = [row["memory_bits_per_word"] for row in rows]
    qualities = [row["quality"] for row in rows]
    disagreements = [row["disagreement_pct"] for row in rows]
    summary = {
        "quality_vs_memory_spearman": spearman_correlation(memories, qualities)
        if len(rows) >= 2
        else 0.0,
        "quality_vs_disagreement_spearman": spearman_correlation(disagreements, qualities)
        if len(rows) >= 2
        else 0.0,
        "mean_quality": float(np.mean(qualities)) if qualities else 0.0,
    }
    return ExperimentResult(name="figures-7-8-quality-tradeoffs", rows=rows, summary=summary)
