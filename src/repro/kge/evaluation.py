"""Knowledge-graph embedding evaluation: link prediction and triplet classification.

Section 6.1 of the paper measures KGE instability with two tasks:

* **Link prediction** -- rank the true tail (and head) of each test triplet
  among all corruptions; instability between two embeddings is
  *unstable-rank@10*, the fraction of test triplets whose rank changes by more
  than 10.
* **Triplet classification** -- per-relation distance thresholds are tuned on
  the validation set; a triplet is predicted positive when its distance is
  below the threshold.  Instability is the prediction disagreement between the
  two embeddings.  The paper sets the thresholds on the FB15K-95 embedding and
  reuses them for the FB15K embedding (shared thresholds); Appendix D.6 /
  Figure 10 re-tunes them per embedding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kge.graph import KnowledgeGraph
from repro.kge.transe import KGEmbedding
from repro.utils.rng import check_random_state

__all__ = [
    "LinkPredictionResult",
    "TripletClassificationResult",
    "link_prediction_ranks",
    "relation_thresholds",
    "triplet_classification",
    "generate_negative_triplets",
]


@dataclass(frozen=True)
class LinkPredictionResult:
    """Link-prediction ranks and summary statistics for one embedding."""

    ranks: np.ndarray
    mean_rank: float
    hits_at_10: float


@dataclass(frozen=True)
class TripletClassificationResult:
    """Triplet-classification predictions and accuracy for one embedding."""

    predictions: np.ndarray
    labels: np.ndarray
    accuracy: float
    thresholds: np.ndarray


def link_prediction_ranks(
    embedding: KGEmbedding,
    kg: KnowledgeGraph,
    *,
    triplets: np.ndarray | None = None,
    norm: int = 1,
    corrupt: str = "tail",
) -> LinkPredictionResult:
    """Rank of the true entity among all corruptions for each test triplet.

    Parameters
    ----------
    embedding:
        Trained KGE.
    kg:
        The graph providing entity/relation counts and the test split.
    triplets:
        Triplets to evaluate (defaults to ``kg.test``).
    norm:
        Distance norm (1 or 2).
    corrupt:
        ``"tail"``, ``"head"``, or ``"both"`` (average of the two ranks).
    """
    if corrupt not in ("head", "tail", "both"):
        raise ValueError("corrupt must be 'head', 'tail' or 'both'")
    triplets = kg.test if triplets is None else np.asarray(triplets, dtype=np.int64)
    ent = embedding.entities
    rel = embedding.relations

    def rank_side(side: str) -> np.ndarray:
        ranks = np.empty(len(triplets), dtype=np.float64)
        for i, (h, r, t) in enumerate(triplets):
            if side == "tail":
                candidates = ent[h] + rel[r] - ent              # distance to every tail
                true_idx = t
            else:
                candidates = ent + rel[r] - ent[t]               # distance from every head
                true_idx = h
            if norm == 1:
                dists = np.abs(candidates).sum(axis=1)
            else:
                dists = np.sqrt((candidates**2).sum(axis=1))
            # Rank = 1 + number of entities strictly closer than the true one.
            ranks[i] = 1.0 + float(np.sum(dists < dists[true_idx]))
        return ranks

    if corrupt == "both":
        ranks = 0.5 * (rank_side("tail") + rank_side("head"))
    else:
        ranks = rank_side(corrupt)
    return LinkPredictionResult(
        ranks=ranks,
        mean_rank=float(np.mean(ranks)),
        hits_at_10=float(np.mean(ranks <= 10)),
    )


def generate_negative_triplets(
    triplets: np.ndarray,
    kg: KnowledgeGraph,
    *,
    seed: int = 0,
) -> np.ndarray:
    """One corrupted (negative) triplet per positive, avoiding known positives."""
    rng = check_random_state(seed)
    known = kg.all_true_triplets()
    negatives = np.asarray(triplets, dtype=np.int64).copy()
    for i in range(len(negatives)):
        h, r, t = negatives[i]
        for _attempt in range(50):
            if rng.random() < 0.5:
                candidate = (int(h), int(r), int(rng.integers(kg.n_entities)))
            else:
                candidate = (int(rng.integers(kg.n_entities)), int(r), int(t))
            if candidate not in known and candidate[0] != candidate[2]:
                negatives[i] = candidate
                break
    return negatives


def relation_thresholds(
    embedding: KGEmbedding,
    kg: KnowledgeGraph,
    *,
    norm: int = 1,
    seed: int = 0,
) -> np.ndarray:
    """Per-relation distance thresholds maximising validation accuracy."""
    positives = kg.valid
    negatives = generate_negative_triplets(positives, kg, seed=seed)
    pos_scores = embedding.score(positives, norm=norm)
    neg_scores = embedding.score(negatives, norm=norm)

    thresholds = np.full(kg.n_relations, np.median(np.concatenate([pos_scores, neg_scores])))
    for r in range(kg.n_relations):
        mask = positives[:, 1] == r
        if not np.any(mask):
            continue
        scores = np.concatenate([pos_scores[mask], neg_scores[mask]])
        labels = np.concatenate([np.ones(mask.sum()), np.zeros(mask.sum())])
        # Evaluate candidate thresholds at the observed scores.
        candidates = np.unique(scores)
        best_acc, best_thr = -1.0, float(candidates[0])
        for thr in candidates:
            acc = float(np.mean((scores <= thr) == labels))
            if acc > best_acc:
                best_acc, best_thr = acc, float(thr)
        thresholds[r] = best_thr
    return thresholds


def triplet_classification(
    embedding: KGEmbedding,
    kg: KnowledgeGraph,
    *,
    thresholds: np.ndarray | None = None,
    norm: int = 1,
    seed: int = 0,
) -> TripletClassificationResult:
    """Binary classification of test triplets (positives + generated negatives).

    Parameters
    ----------
    thresholds:
        Per-relation thresholds; computed on this embedding's validation
        scores when omitted.  Passing the thresholds of another embedding
        reproduces the paper's shared-threshold protocol.
    """
    if thresholds is None:
        thresholds = relation_thresholds(embedding, kg, norm=norm, seed=seed)
    thresholds = np.asarray(thresholds, dtype=np.float64)
    if thresholds.shape != (kg.n_relations,):
        raise ValueError(f"thresholds must have shape ({kg.n_relations},)")

    positives = kg.test
    negatives = generate_negative_triplets(positives, kg, seed=seed + 1)
    triplets = np.vstack([positives, negatives])
    labels = np.concatenate([np.ones(len(positives)), np.zeros(len(negatives))])
    scores = embedding.score(triplets, norm=norm)
    predictions = (scores <= thresholds[triplets[:, 1]]).astype(np.int64)
    accuracy = float(np.mean(predictions == labels))
    return TripletClassificationResult(
        predictions=predictions,
        labels=labels.astype(np.int64),
        accuracy=accuracy,
        thresholds=thresholds,
    )
