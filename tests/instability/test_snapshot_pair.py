"""``PipelineConfig.snapshot_pair``: snapshots as a first-class grid axis."""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.corpus.snapshots import store_snapshot
from repro.corpus.synthetic import Corpus
from repro.engine.store import ArtifactStore
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig
from repro.serving.api import quick_serve_config
from repro.utils.io import to_jsonable


def ingested_corpora():
    """Two small corpora sharing a word list, as the monitor would cut them."""
    rng = np.random.default_rng(3)
    words = [f"w{i:05d}" for i in range(40)]
    docs_a = [rng.integers(0, 40, size=12).astype(np.int64) for _ in range(25)]
    docs_b = docs_a + [rng.integers(0, 40, size=12).astype(np.int64) for _ in range(10)]

    def corpus(docs):
        return Corpus(
            word_list=words, documents=docs,
            document_topics=np.zeros(len(docs), dtype=np.int64), name="monitor",
        )

    return corpus(docs_a), corpus(docs_b)


@pytest.fixture()
def store_with_pair():
    store = ArtifactStore()
    base, drifted = ingested_corpora()
    return store, store_snapshot(store, base), store_snapshot(store, drifted)


class TestConfigField:
    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(snapshot_pair=("only-one",))
        with pytest.raises(ValueError):
            PipelineConfig(snapshot_pair=("a", ""))

    def test_jsonable_round_trip(self):
        config = dataclasses.replace(
            quick_serve_config(), snapshot_pair=("k" * 24, "j" * 24)
        )
        restored = PipelineConfig.from_jsonable(to_jsonable(config))
        assert restored.snapshot_pair == ("k" * 24, "j" * 24)
        assert restored == config

    def test_default_is_none_and_round_trips(self):
        config = quick_serve_config()
        assert config.snapshot_pair is None
        assert PipelineConfig.from_jsonable(to_jsonable(config)).snapshot_pair is None


class TestPipelineLoading:
    def test_loads_corpora_from_store(self, store_with_pair):
        store, base_key, drifted_key = store_with_pair
        config = dataclasses.replace(
            quick_serve_config(), snapshot_pair=(base_key, drifted_key)
        )
        pipeline = InstabilityPipeline(config, store=store)
        assert pipeline.reconstructible
        assert pipeline.corpus_build_count == 0       # nothing generated
        base, drifted = pipeline.corpus_pair.base, pipeline.corpus_pair.drifted
        assert len(base.documents) == 25
        assert len(drifted.documents) == 35
        assert base.word_list == drifted.word_list

    def test_missing_snapshot_raises(self):
        config = dataclasses.replace(
            quick_serve_config(), snapshot_pair=("0" * 24, "1" * 24)
        )
        with pytest.raises(KeyError):
            InstabilityPipeline(config, store=ArtifactStore())

    def test_snapshot_pair_salts_artifact_keys(self, store_with_pair):
        # Two different snapshot pairs are different cache universes: every
        # content-addressed artifact key must differ between them.
        store, base_key, drifted_key = store_with_pair
        cfg_a = dataclasses.replace(
            quick_serve_config(), snapshot_pair=(base_key, drifted_key)
        )
        cfg_b = dataclasses.replace(
            quick_serve_config(), snapshot_pair=(drifted_key, base_key)
        )
        pipe_a = InstabilityPipeline(cfg_a, store=store)
        pipe_b = InstabilityPipeline(cfg_b, store=store)
        key_a = pipe_a.measures_key("svd", 4, 1, 0)
        key_b = pipe_b.measures_key("svd", 4, 1, 0)
        assert key_a != key_b

    def test_grid_runs_over_snapshots(self, store_with_pair):
        store, base_key, drifted_key = store_with_pair
        config = dataclasses.replace(
            quick_serve_config(),
            snapshot_pair=(base_key, drifted_key),
            dimensions=(4,), precisions=(32,),
        )
        from repro.engine import GridEngine

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            records = GridEngine(
                InstabilityPipeline(config, store=store), coordinator_url=""
            ).run(with_measures=True)
        assert len(records) == 1
        assert records[0].measures["eis"] >= 0
