"""Uniform quantization of embedding matrices.

Section 2.3 / Appendix C.2 of the paper: every entry is deterministically
rounded to one of ``2**b`` equally-spaced values inside ``[-clip, clip]``,
where the clipping threshold is chosen to minimise the expected squared
reconstruction error of the entry distribution (the "optimal clipping
threshold" of May et al., 2019).  To avoid adding instability, the paper uses
*deterministic* rounding and applies the threshold computed on the Wiki'17
embedding to both members of a pair; both behaviours are reproduced (and
exposed as flags so the ablations can flip them).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embeddings.base import Embedding
from repro.utils.rng import check_random_state
from repro.utils.validation import check_array

__all__ = [
    "optimal_clip_threshold",
    "uniform_quantize",
    "UniformQuantizer",
    "compress_embedding",
    "compress_pair",
]

FULL_PRECISION_BITS = 32


def optimal_clip_threshold(
    values: np.ndarray, bits: int, *, grid_size: int = 40
) -> float:
    """Clipping threshold minimising expected squared quantization error.

    Searches a grid of candidate thresholds between the RMS and the max of
    ``|values|`` and returns the one whose combination of clipping error
    (entries beyond the threshold) and rounding error (quantization step noise
    ``delta^2 / 12`` for entries inside) is smallest.

    Parameters
    ----------
    values:
        Entries to be quantized (any shape).
    bits:
        Precision in bits (``b``); the grid has ``2**b`` levels.
    grid_size:
        Number of candidate thresholds evaluated.
    """
    flat = np.abs(np.asarray(values, dtype=np.float64)).ravel()
    if flat.size == 0:
        return 1.0
    max_abs = float(flat.max())
    if max_abs == 0.0:
        return 1.0
    if bits >= FULL_PRECISION_BITS:
        return max_abs
    rms = float(np.sqrt(np.mean(flat**2)))
    lo = max(rms, 1e-12)
    hi = max(max_abs, lo * (1 + 1e-9))
    candidates = np.linspace(lo, hi, grid_size)
    n_levels = 2**bits

    best_thr, best_err = hi, np.inf
    for thr in candidates:
        delta = 2.0 * thr / max(n_levels - 1, 1)
        clipped = np.clip(flat, None, thr)
        clip_err = np.mean((flat - clipped) ** 2)
        round_err = (delta**2) / 12.0 * np.mean(flat <= thr)
        err = clip_err + round_err
        if err < best_err:
            best_err, best_thr = err, float(thr)
    return best_thr


def uniform_quantize(
    X: np.ndarray,
    bits: int,
    *,
    clip: float | None = None,
    stochastic: bool = False,
    seed: int | None = None,
) -> np.ndarray:
    """Quantize ``X`` to ``2**bits`` evenly spaced values in ``[-clip, clip]``.

    Parameters
    ----------
    X:
        Matrix to quantize.
    bits:
        Precision ``b``; ``b >= 32`` returns ``X`` unchanged (full precision).
    clip:
        Clipping threshold; computed with :func:`optimal_clip_threshold` when
        omitted.
    stochastic:
        Use stochastic instead of deterministic rounding (the paper uses
        deterministic rounding to avoid adding instability; the flag exists
        for the ablation).
    seed:
        RNG seed for stochastic rounding.

    Returns
    -------
    ndarray with the same shape as ``X`` whose entries take at most
    ``2**bits`` distinct values.
    """
    X = check_array(X, name="X", allow_empty=True)
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if bits >= FULL_PRECISION_BITS:
        return X.copy()
    if clip is None:
        clip = optimal_clip_threshold(X, bits)
    if clip <= 0:
        raise ValueError(f"clip threshold must be positive, got {clip}")

    n_levels = 2**bits
    delta = 2.0 * clip / (n_levels - 1) if n_levels > 1 else 2.0 * clip
    clipped = np.clip(X, -clip, clip)
    scaled = (clipped + clip) / delta
    if stochastic:
        rng = check_random_state(seed)
        floor = np.floor(scaled)
        frac = scaled - floor
        levels = floor + (rng.random(scaled.shape) < frac)
    else:
        levels = np.rint(scaled)
    levels = np.clip(levels, 0, n_levels - 1)
    return levels * delta - clip


@dataclass
class UniformQuantizer:
    """Reusable quantizer that remembers its clipping threshold.

    Fitting on one matrix (the paper's Wiki'17 embedding) and applying to
    another (the Wiki'18 embedding) reproduces the shared-threshold behaviour
    of Appendix C.2.
    """

    bits: int
    stochastic: bool = False
    seed: int | None = None
    clip_: float | None = None

    def fit(self, X: np.ndarray) -> "UniformQuantizer":
        if self.bits >= FULL_PRECISION_BITS:
            self.clip_ = float(np.abs(np.asarray(X)).max() or 1.0)
        else:
            self.clip_ = optimal_clip_threshold(X, self.bits)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.clip_ is None:
            raise RuntimeError("UniformQuantizer must be fit before transform")
        return uniform_quantize(
            X, self.bits, clip=self.clip_, stochastic=self.stochastic, seed=self.seed
        )

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


def compress_embedding(
    embedding: Embedding,
    bits: int,
    *,
    clip: float | None = None,
    stochastic: bool = False,
    seed: int | None = None,
) -> Embedding:
    """Return a copy of ``embedding`` quantized to ``bits`` bits per entry."""
    quantized = uniform_quantize(
        embedding.vectors, bits, clip=clip, stochastic=stochastic, seed=seed
    )
    return embedding.with_vectors(quantized, precision=int(bits))


def compress_pair(
    reference: Embedding,
    other: Embedding,
    bits: int,
    *,
    share_threshold: bool = True,
    stochastic: bool = False,
    seed: int | None = None,
) -> tuple[Embedding, Embedding]:
    """Quantize an embedding pair, sharing the clipping threshold by default.

    Parameters
    ----------
    reference, other:
        The Wiki'17-style and Wiki'18-style embeddings.
    bits:
        Precision.
    share_threshold:
        Compute the clip threshold on ``reference`` and reuse it for ``other``
        (paper behaviour).  When ``False`` each embedding gets its own
        threshold (the ablation).
    """
    quantizer = UniformQuantizer(bits=bits, stochastic=stochastic, seed=seed).fit(
        reference.vectors
    )
    ref_q = reference.with_vectors(quantizer.transform(reference.vectors), precision=int(bits))
    if share_threshold:
        other_q = other.with_vectors(quantizer.transform(other.vectors), precision=int(bits))
    else:
        other_q = compress_embedding(other, bits, stochastic=stochastic, seed=seed)
    return ref_q, other_q
