"""Worker warm-up: ship pre-built artifacts to scheduler workers once.

The parallel scheduler used to rebuild the whole pipeline -- including
regenerating the synthetic corpus pair -- inside every worker process.  A
:class:`CorpusShipment` instead packs the parent's already-generated pair
into flat arrays, publishes them through one
:class:`multiprocessing.shared_memory.SharedMemory` segment, and hands the
workers a small picklable handle; each worker attaches and reconstructs the
pair as zero-copy views, so the corpus is built exactly once per run instead
of once per worker.

:class:`EmbeddingShipment` extends the same mechanism to *trained* embedding
pairs: whatever full-precision pairs the parent's store already holds in its
memory tier travel to the workers through shared memory and are preloaded
into each worker store, so a warm-store parallel rerun (or a long-lived
serving process re-fanning a grid out) retrains nothing even when the store
has no disk tier to share.

When shared memory is unavailable (platform quirks, exhausted ``/dev/shm``),
both shipments transparently fall back to carrying the packed arrays inline
in the handle -- still one build, just shipped by pickling instead of mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.corpus.synthetic import Corpus, CorpusPair
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only; avoids an import cycle
    from repro.embeddings.base import Embedding
    from repro.engine.store import ArtifactStore

logger = get_logger(__name__)

__all__ = [
    "CorpusShipment",
    "EmbeddingShipment",
    "pack_corpus",
    "unpack_corpus",
    "PackedCorpus",
]


@dataclass
class PackedCorpus:
    """A :class:`Corpus` flattened into three arrays (plus its word list)."""

    tokens: np.ndarray        # every document concatenated, int64
    offsets: np.ndarray       # document i is tokens[offsets[i]:offsets[i+1]]
    topics: np.ndarray
    word_list: list[str]
    name: str


def pack_corpus(corpus: Corpus) -> PackedCorpus:
    """Flatten a corpus into shared-memory-friendly arrays."""
    lengths = np.asarray([len(d) for d in corpus.documents], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    tokens = (
        np.concatenate(corpus.documents)
        if corpus.documents
        else np.array([], dtype=np.int64)
    ).astype(np.int64, copy=False)
    return PackedCorpus(
        tokens=tokens,
        offsets=offsets,
        topics=np.asarray(corpus.document_topics),
        word_list=list(corpus.word_list),
        name=corpus.name,
    )


def unpack_corpus(packed: PackedCorpus) -> Corpus:
    """Rebuild a corpus from packed arrays; documents are zero-copy views."""
    documents = [
        packed.tokens[start:stop]
        for start, stop in zip(packed.offsets[:-1], packed.offsets[1:])
    ]
    return Corpus(
        word_list=list(packed.word_list),
        documents=documents,
        document_topics=np.asarray(packed.topics),
        name=packed.name,
    )


def _array_specs(arrays: dict[str, np.ndarray]) -> tuple[list[tuple], int]:
    """Byte layout (name, dtype, shape, offset) of arrays packed back to back."""
    specs, cursor = [], 0
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        specs.append((name, arr.dtype.str, arr.shape, cursor))
        cursor += arr.nbytes
    return specs, cursor


class _ArrayShipment:
    """Picklable handle delivering a dict of arrays (plus metadata) to workers.

    Create with :meth:`_build` in the parent, pass through the pool
    initializer, attach in each worker, and finally :meth:`close` (parent
    side) once the pool is done.  Attributes ``via_shared_memory`` and
    ``nbytes`` expose how the arrays travelled, and the scheduler surfaces
    them as warm-up counters.
    """

    def __init__(
        self,
        *,
        shm_name: str | None,
        specs: list[tuple],
        inline: dict[str, np.ndarray] | None,
        meta: dict,
        nbytes: int,
    ) -> None:
        self._shm_name = shm_name
        self._specs = specs
        self._inline = inline
        self._meta = meta
        self.nbytes = int(nbytes)
        self._shm = None          # parent-side owner / worker-side attachment
        self._owner = False       # True only on the creating (parent) handle

    # -- construction (parent) ------------------------------------------------

    @classmethod
    def _build(
        cls, arrays: dict[str, np.ndarray], meta: dict, *, use_shared_memory: bool = True
    ) -> "_ArrayShipment":
        specs, total = _array_specs(arrays)

        shipment = None
        if use_shared_memory and total > 0:
            shm = None
            try:
                from multiprocessing import shared_memory

                shm = shared_memory.SharedMemory(create=True, size=total)
                for (name, dtype, shape, offset), arr in zip(specs, arrays.values()):
                    view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=offset)
                    view[...] = arr
                shipment = cls(
                    shm_name=shm.name, specs=specs, inline=None, meta=meta, nbytes=total
                )
                shipment._shm = shm
                shipment._owner = True
            except Exception as error:  # pragma: no cover - platform dependent
                # A segment created before the failure must not leak: POSIX
                # shared memory outlives the process unless unlinked.
                if shm is not None:
                    try:
                        shm.close()
                        shm.unlink()
                    except OSError:
                        pass
                logger.info("shared-memory warm-up unavailable (%s); shipping inline", error)
        if shipment is None:
            shipment = cls(
                shm_name=None, specs=specs,
                inline={name: np.ascontiguousarray(arr) for name, arr in arrays.items()},
                meta=meta, nbytes=total,
            )
        return shipment

    @property
    def via_shared_memory(self) -> bool:
        return self._shm_name is not None

    # -- pickling -------------------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_shm"] = None      # segments are re-attached by name in workers
        state["_owner"] = False   # only the creating handle may unlink
        return state

    # -- materialisation (worker) ---------------------------------------------

    def _attach_arrays(self) -> dict[str, np.ndarray]:
        if self._inline is not None:
            return self._inline
        from multiprocessing import shared_memory

        if self._shm is None:
            try:
                # Python 3.13+: attach without resource-tracker registration
                # (the creating process owns cleanup).
                self._shm = shared_memory.SharedMemory(name=self._shm_name, track=False)
            except TypeError:
                # Older Pythons: plain attach.  Under the fork start method the
                # tracker process is shared and registration is idempotent, so
                # the owner's single unlink still cleans up exactly once.
                self._shm = shared_memory.SharedMemory(name=self._shm_name)
        return {
            name: np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=offset)
            for name, dtype, shape, offset in self._specs
        }

    # -- cleanup (parent) -----------------------------------------------------

    def close(self) -> None:
        """Release the shared segment (the creating handle also unlinks it)."""
        if self._shm is not None:
            try:
                self._shm.close()
                if self._owner:
                    self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            self._shm = None


class CorpusShipment(_ArrayShipment):
    """Delivers a pre-built :class:`CorpusPair` to scheduler workers."""

    @classmethod
    def create(cls, pair: CorpusPair, *, use_shared_memory: bool = True) -> "CorpusShipment":
        packed = {"base": pack_corpus(pair.base), "drifted": pack_corpus(pair.drifted)}
        arrays = {
            f"{side}/{field}": getattr(p, field)
            for side, p in packed.items()
            for field in ("tokens", "offsets", "topics")
        }
        meta = {
            "config": pair.config,
            "word_lists": {side: p.word_list for side, p in packed.items()},
            "names": {side: p.name for side, p in packed.items()},
        }
        return cls._build(arrays, meta, use_shared_memory=use_shared_memory)

    def materialize(self) -> CorpusPair:
        """Reconstruct the corpus pair (zero-copy views over shared memory).

        The returned corpora reference this shipment's buffer; keep the
        shipment alive for as long as the pair is used (the scheduler keeps it
        in the worker-global state).
        """
        arrays = self._attach_arrays()
        corpora = {}
        for side in ("base", "drifted"):
            corpora[side] = unpack_corpus(
                PackedCorpus(
                    tokens=arrays[f"{side}/tokens"],
                    offsets=arrays[f"{side}/offsets"],
                    topics=arrays[f"{side}/topics"],
                    word_list=self._meta["word_lists"][side],
                    name=self._meta["names"][side],
                )
            )
        return CorpusPair(
            base=corpora["base"], drifted=corpora["drifted"], config=self._meta["config"]
        )


class EmbeddingShipment(_ArrayShipment):
    """Delivers already-trained embedding pairs to scheduler workers.

    The parent packs every pair its store holds in its memory tier (keyed by
    the same content hashes the workers will derive) and each worker preloads
    them into its own store via :meth:`seed`, so warm reruns fan out without a
    disk tier and still perform zero retrainings.  Vectors travel through
    shared memory; vocabularies and metadata (small) ride inline in the
    handle.
    """

    @classmethod
    def create(
        cls,
        pairs: Mapping[str, tuple["Embedding", "Embedding"]],
        *,
        kind: str = "embedding_pair",
        use_shared_memory: bool = True,
    ) -> "EmbeddingShipment":
        arrays: dict[str, np.ndarray] = {}
        entries: dict[str, dict] = {}
        for key, (emb_a, emb_b) in pairs.items():
            arrays[f"{key}/a"] = emb_a.vectors
            arrays[f"{key}/b"] = emb_b.vectors
            entries[key] = {
                side: {
                    "words": list(emb.vocab.words),
                    "counts": [int(emb.vocab.count(w)) for w in emb.vocab.words],
                    "metadata": dict(emb.metadata),
                }
                for side, emb in (("a", emb_a), ("b", emb_b))
            }
        meta = {"kind": kind, "entries": entries}
        return cls._build(arrays, meta, use_shared_memory=use_shared_memory)

    @property
    def n_pairs(self) -> int:
        return len(self._meta["entries"])

    def seed(self, store: "ArtifactStore") -> int:
        """Preload every shipped pair into ``store``'s memory tier.

        Returns the number of pairs preloaded.  The reconstructed vectors are
        zero-copy views over the shipment's buffer, so keep the shipment alive
        for as long as the store serves them (the scheduler parks it in the
        worker-global state next to the corpus shipment).
        """
        from repro.corpus.vocabulary import Vocabulary
        from repro.embeddings.base import Embedding

        arrays = self._attach_arrays()
        kind = self._meta["kind"]
        for key, entry in self._meta["entries"].items():
            pair = []
            for side in ("a", "b"):
                spec = entry[side]
                vocab = Vocabulary(dict(zip(spec["words"], spec["counts"])))
                vectors = arrays[f"{key}/{side}"]
                # Vocabulary re-sorts by frequency; restore row alignment the
                # same way the store's disk loader does.
                if list(vocab.words) != spec["words"]:
                    order = np.asarray(
                        [spec["words"].index(w) for w in vocab.words], dtype=np.int64
                    )
                    vectors = vectors[order]
                pair.append(
                    Embedding(vocab=vocab, vectors=vectors, metadata=dict(spec["metadata"]))
                )
            store.preload(kind, key, (pair[0], pair[1]))
        return self.n_pairs
