"""Memory accounting for dimension-precision combinations.

The paper's central axis is the embedding *memory*, measured in bits per word:
``memory = dimension * precision``.  This module provides the bookkeeping used
by the stability-memory tradeoff study (Figure 2) and by the memory-budget
selection task (Table 3): enumerating dimension-precision grids and grouping
the combinations that share a memory budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.embeddings.base import Embedding

__all__ = [
    "bits_per_word",
    "memory_of",
    "DimensionPrecision",
    "dimension_precision_grid",
    "pairs_for_budget",
]

#: Default sweeps from the paper (Section 3), scaled values are chosen by callers.
PAPER_DIMENSIONS = (25, 50, 100, 200, 400, 800)
PAPER_PRECISIONS = (1, 2, 4, 8, 16, 32)


def bits_per_word(dim: int, precision: int) -> int:
    """Memory of one embedding row in bits: ``dim * precision``."""
    if dim <= 0 or precision <= 0:
        raise ValueError("dim and precision must be positive")
    return int(dim) * int(precision)


def memory_of(embedding: Embedding) -> int:
    """Bits/word of an embedding based on its metadata (default precision 32)."""
    precision = int(embedding.metadata.get("precision", 32))
    return bits_per_word(embedding.dim, precision)


@dataclass(frozen=True, order=True)
class DimensionPrecision:
    """A (dimension, precision) combination and its memory footprint."""

    dim: int
    precision: int

    @property
    def memory(self) -> int:
        return bits_per_word(self.dim, self.precision)

    def __str__(self) -> str:
        return f"d={self.dim},b={self.precision}"


def dimension_precision_grid(
    dimensions=PAPER_DIMENSIONS, precisions=PAPER_PRECISIONS
) -> list[DimensionPrecision]:
    """The full cross product of dimensions and precisions, sorted by memory."""
    grid = [DimensionPrecision(int(d), int(b)) for d in dimensions for b in precisions]
    return sorted(grid, key=lambda dp: (dp.memory, dp.dim))


def pairs_for_budget(
    grid: list[DimensionPrecision] | None = None,
    *,
    dimensions=PAPER_DIMENSIONS,
    precisions=PAPER_PRECISIONS,
) -> dict[int, list[DimensionPrecision]]:
    """Group dimension-precision combinations by their shared memory budget.

    Only budgets with at least two distinct combinations are returned, because
    the Table 3 selection task needs a choice to make.
    """
    if grid is None:
        grid = dimension_precision_grid(dimensions, precisions)
    budgets: dict[int, list[DimensionPrecision]] = {}
    for dp in grid:
        budgets.setdefault(dp.memory, []).append(dp)
    return {m: sorted(v) for m, v in sorted(budgets.items()) if len(v) >= 2}
