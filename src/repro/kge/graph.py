"""Synthetic multi-relational knowledge graphs (an FB15K-shaped substitute).

Section 6.1 of the paper trains TransE on FB15K and on FB15K-95 (a random 95%
subsample of the training triplets) and measures how much link-prediction
ranks and triplet-classification predictions change.  FB15K itself cannot be
shipped offline, so this module generates a graph with the same load-bearing
properties: typed entities, skewed entity popularity, relations that connect
specific type pairs with mostly-deterministic tail preferences (so TransE's
``h + r ~ t`` structure is learnable), and a train/valid/test triplet split
with a subsampling helper for the 95% variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import check_random_state
from repro.utils.validation import check_probability

__all__ = ["SyntheticKGConfig", "KnowledgeGraph", "generate_knowledge_graph"]


@dataclass(frozen=True)
class SyntheticKGConfig:
    """Configuration of the synthetic knowledge graph generator.

    Attributes
    ----------
    n_entities:
        Number of entities.
    n_relations:
        Number of relation types.
    n_entity_types:
        Number of latent entity types (relations connect type pairs).
    n_triplets:
        Total number of distinct triplets generated (before splitting).
    preferred_tail_probability:
        Probability a triplet uses the head's preferred tail for the relation
        (higher = more learnable structure).
    valid_fraction, test_fraction:
        Fractions of triplets held out for validation / test.
    popularity_exponent:
        Zipf exponent of entity popularity when sampling heads.
    seed:
        Generation seed.
    """

    n_entities: int = 300
    n_relations: int = 12
    n_entity_types: int = 6
    n_triplets: int = 4000
    preferred_tail_probability: float = 0.8
    valid_fraction: float = 0.1
    test_fraction: float = 0.1
    popularity_exponent: float = 0.8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_entities < self.n_entity_types:
            raise ValueError("n_entities must be at least n_entity_types")
        if self.n_relations <= 0 or self.n_triplets <= 0:
            raise ValueError("n_relations and n_triplets must be positive")
        check_probability(self.preferred_tail_probability, name="preferred_tail_probability")
        if self.valid_fraction + self.test_fraction >= 1.0:
            raise ValueError("valid_fraction + test_fraction must be < 1")


@dataclass
class KnowledgeGraph:
    """A knowledge graph with train/valid/test triplet splits.

    Triplet arrays have shape ``(n, 3)`` with columns (head, relation, tail).
    """

    n_entities: int
    n_relations: int
    train: np.ndarray
    valid: np.ndarray
    test: np.ndarray
    name: str = "kg"
    entity_types: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    def __post_init__(self) -> None:
        for split_name in ("train", "valid", "test"):
            arr = np.asarray(getattr(self, split_name), dtype=np.int64)
            if arr.ndim != 2 or arr.shape[1] != 3:
                raise ValueError(f"{split_name} triplets must have shape (n, 3)")
            setattr(self, split_name, arr)

    @property
    def n_train(self) -> int:
        return len(self.train)

    def all_true_triplets(self) -> set[tuple[int, int, int]]:
        """Set of every (h, r, t) in any split (used for filtered evaluation)."""
        stacked = np.vstack([self.train, self.valid, self.test])
        return {tuple(int(x) for x in row) for row in stacked}

    def subsample_train(self, fraction: float, *, seed: int = 0, name: str | None = None) -> "KnowledgeGraph":
        """Random subsample of the training triplets (valid/test unchanged).

        ``fraction=0.95`` reproduces the paper's FB15K-95 construction.
        """
        check_probability(fraction, name="fraction")
        rng = check_random_state(seed)
        n_keep = int(round(fraction * len(self.train)))
        keep = rng.choice(len(self.train), size=n_keep, replace=False)
        return KnowledgeGraph(
            n_entities=self.n_entities,
            n_relations=self.n_relations,
            train=self.train[np.sort(keep)],
            valid=self.valid,
            test=self.test,
            name=name or f"{self.name}-{int(round(fraction * 100))}",
            entity_types=self.entity_types,
        )


def generate_knowledge_graph(config: SyntheticKGConfig | None = None) -> KnowledgeGraph:
    """Generate a synthetic knowledge graph per :class:`SyntheticKGConfig`."""
    cfg = config or SyntheticKGConfig()
    rng = check_random_state(cfg.seed)

    entity_types = rng.integers(cfg.n_entity_types, size=cfg.n_entities)
    entities_of_type = [np.flatnonzero(entity_types == t) for t in range(cfg.n_entity_types)]
    # Guarantee every type has at least one entity.
    for t, members in enumerate(entities_of_type):
        if len(members) == 0:
            entity_types[t % cfg.n_entities] = t
    entities_of_type = [np.flatnonzero(entity_types == t) for t in range(cfg.n_entity_types)]

    # Each relation connects a (head type, tail type) pair and has a preferred
    # tail per head entity, so h + r ~ t structure exists to be learned.
    relation_head_type = rng.integers(cfg.n_entity_types, size=cfg.n_relations)
    relation_tail_type = rng.integers(cfg.n_entity_types, size=cfg.n_relations)
    preferred_tail = np.empty((cfg.n_relations, cfg.n_entities), dtype=np.int64)
    for r in range(cfg.n_relations):
        tails = entities_of_type[relation_tail_type[r]]
        preferred_tail[r] = rng.choice(tails, size=cfg.n_entities, replace=True)

    # Zipf-like popularity over heads within each type.
    popularity = (np.arange(1, cfg.n_entities + 1) ** (-cfg.popularity_exponent))
    popularity = popularity[rng.permutation(cfg.n_entities)]

    triplets: set[tuple[int, int, int]] = set()
    max_attempts = cfg.n_triplets * 30
    attempts = 0
    while len(triplets) < cfg.n_triplets and attempts < max_attempts:
        attempts += 1
        r = int(rng.integers(cfg.n_relations))
        heads = entities_of_type[relation_head_type[r]]
        head_probs = popularity[heads] / popularity[heads].sum()
        h = int(rng.choice(heads, p=head_probs))
        if rng.random() < cfg.preferred_tail_probability:
            t = int(preferred_tail[r, h])
        else:
            tails = entities_of_type[relation_tail_type[r]]
            t = int(rng.choice(tails))
        if h != t:
            triplets.add((h, r, t))

    all_triplets = np.asarray(sorted(triplets), dtype=np.int64)
    rng.shuffle(all_triplets)
    n_total = len(all_triplets)
    n_valid = int(round(cfg.valid_fraction * n_total))
    n_test = int(round(cfg.test_fraction * n_total))
    valid = all_triplets[:n_valid]
    test = all_triplets[n_valid : n_valid + n_test]
    train = all_triplets[n_valid + n_test :]

    return KnowledgeGraph(
        n_entities=cfg.n_entities,
        n_relations=cfg.n_relations,
        train=train,
        valid=valid,
        test=test,
        name="synthetic-kg",
        entity_types=entity_types,
    )
