"""Tests of the blocked GEMM measure kernels (cosine top-k, set overlap, Gram)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    cosine_top_k,
    gram_frobenius_diff_sq,
    normalize_rows,
    row_set_overlap,
)


def brute_force_top_k(X, queries, k):
    """Unblocked reference: full similarity matrix + per-row sort."""
    normed = normalize_rows(X)
    sims = normed[queries] @ normed.T
    sims[np.arange(len(queries)), queries] = -np.inf
    return np.argsort(-sims, axis=1)[:, :k]


class TestCosineTopK:
    @pytest.mark.parametrize("block_size", [1, 3, 7, 512])
    def test_blocking_invariant(self, rng, block_size):
        X = rng.standard_normal((40, 6))
        queries = rng.choice(40, size=15, replace=False)
        reference = cosine_top_k(X, queries, 5, block_size=4096)
        blocked = cosine_top_k(X, queries, 5, block_size=block_size)
        # argpartition order within the top-k is unspecified: compare as sets.
        for ref_row, blk_row in zip(reference, blocked):
            assert set(ref_row) == set(blk_row)

    def test_matches_brute_force_sets(self, rng):
        X = rng.standard_normal((60, 8))
        queries = np.arange(20)
        top = cosine_top_k(X, queries, 5)
        brute = brute_force_top_k(X, queries, 5)
        for fast_row, slow_row in zip(top, brute):
            assert set(fast_row) == set(slow_row)

    def test_excludes_query_row(self, rng):
        X = rng.standard_normal((30, 4))
        queries = np.arange(30)
        top = cosine_top_k(X, queries, 5)
        for q, row in zip(queries, top):
            assert q not in row

    def test_k_capped(self, rng):
        X = rng.standard_normal((6, 3))
        top = cosine_top_k(X, np.arange(6), 50)
        assert top.shape == (6, 5)

    def test_rejects_degenerate(self, rng):
        with pytest.raises(ValueError):
            cosine_top_k(rng.standard_normal((1, 3)), np.array([0]), 1)


class TestRowSetOverlap:
    def test_matches_intersect1d_loop(self, rng):
        a = np.stack([rng.choice(50, size=8, replace=False) for _ in range(20)])
        b = np.stack([rng.choice(50, size=8, replace=False) for _ in range(20)])
        expected = np.array([len(np.intersect1d(a[i], b[i])) for i in range(20)])
        assert np.array_equal(row_set_overlap(a, b), expected)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_property_matches_intersect1d(self, q, k, seed):
        rng = np.random.default_rng(seed)
        universe = max(k + 1, 15)
        a = np.stack([rng.choice(universe, size=k, replace=False) for _ in range(q)])
        b = np.stack([rng.choice(universe, size=k, replace=False) for _ in range(q)])
        expected = np.array([len(np.intersect1d(a[i], b[i])) for i in range(q)])
        assert np.array_equal(row_set_overlap(a, b), expected)

    def test_disjoint_and_identical_rows(self):
        a = np.array([[0, 1, 2], [3, 4, 5]])
        assert np.array_equal(row_set_overlap(a, a), [3, 3])
        b = np.array([[6, 7, 8], [9, 10, 11]])
        assert np.array_equal(row_set_overlap(a, b), [0, 0])

    def test_no_cross_row_matches(self):
        # Row 0 of `a` shares ids with row 1 of `b` only: overlap must be zero.
        a = np.array([[1, 2], [5, 6]])
        b = np.array([[5, 6], [1, 2]])
        assert np.array_equal(row_set_overlap(a, b), [0, 0])

    def test_different_widths(self):
        a = np.array([[0, 1, 2, 3]])
        b = np.array([[2, 3]])
        assert np.array_equal(row_set_overlap(a, b), [2])

    def test_rejects_negative_and_mismatched(self):
        with pytest.raises(ValueError):
            row_set_overlap(np.array([[-1, 2]]), np.array([[0, 1]]))
        with pytest.raises(ValueError):
            row_set_overlap(np.ones((2, 3), dtype=int), np.ones((3, 3), dtype=int))


class TestGramFrobenius:
    def test_matches_dense(self, rng):
        X = rng.standard_normal((30, 5))
        Y = rng.standard_normal((30, 8))
        dense = np.linalg.norm(X @ X.T - Y @ Y.T) ** 2
        assert gram_frobenius_diff_sq(X, Y) == pytest.approx(dense, rel=1e-9)

    @pytest.mark.parametrize("block_rows", [1, 7, 16, None])
    def test_blocking_invariant(self, rng, block_rows):
        X = rng.standard_normal((25, 4))
        Y = rng.standard_normal((25, 6))
        full = gram_frobenius_diff_sq(X, Y)
        assert gram_frobenius_diff_sq(X, Y, block_rows=block_rows) == pytest.approx(
            full, rel=1e-9
        )

    def test_float32_accumulates_in_float64(self, rng):
        X = rng.standard_normal((200, 16)).astype(np.float32)
        result = gram_frobenius_diff_sq(X, X)
        assert isinstance(result, float)
        assert result == pytest.approx(0.0, abs=1e-2)

    def test_row_mismatch(self, rng):
        with pytest.raises(ValueError):
            gram_frobenius_diff_sq(rng.standard_normal((5, 2)), rng.standard_normal((6, 2)))


class TestNormalizeRows:
    def test_unit_norms_and_zero_rows(self):
        X = np.array([[3.0, 4.0], [0.0, 0.0]])
        normed = normalize_rows(X)
        assert np.allclose(normed[0], [0.6, 0.8])
        assert np.array_equal(normed[1], [0.0, 0.0])

    def test_dtype_preserved(self):
        X = np.ones((3, 2), dtype=np.float32)
        assert normalize_rows(X).dtype == np.float32
