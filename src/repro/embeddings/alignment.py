"""Orthogonal Procrustes alignment of embedding pairs.

The paper aligns each Wiki'18 embedding to its Wiki'17 counterpart with
orthogonal Procrustes (Schönemann, 1966) *before* compressing and training
downstream models, because preliminary experiments showed alignment lowers
instability (Appendix C.2).  Alignment is exposed as a flag throughout the
pipeline so the ablation can be reproduced.

The rotation solve is the SVD of the ``(d, d)`` cross product ``Y^T X``.
Passing a :class:`~repro.linalg.KernelPolicy` dispatches that SVD through the
kernel layer (exact or seeded Halko randomized); the returned rotation is
``U V^T`` of whatever factorization ran, so it is exactly orthogonal either
way -- a randomized policy perturbs *which* rotation is chosen, never its
orthogonality.  :func:`alignment_residual` reports the relative Frobenius
misfit of an alignment, the error estimate the fast serving path threads
into its escalation logic.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import Embedding
from repro.linalg import KernelPolicy, compute_svd
from repro.utils.validation import check_embedding_pair

__all__ = [
    "orthogonal_procrustes",
    "alignment_residual",
    "align_matrices",
    "align_pair",
]


def orthogonal_procrustes(
    X: np.ndarray, Y: np.ndarray, *, policy: KernelPolicy | None = None
) -> np.ndarray:
    """Solve ``min_R ||X - Y R||_F`` subject to ``R^T R = I``.

    Returns the orthogonal matrix ``R`` that rotates ``Y`` onto ``X``.  Both
    matrices must have the same shape ``(n, d)``.  With ``policy=None`` the
    ``(d, d)`` SVD runs on the plain LAPACK path (bit-identical to the seed
    repository regardless of any process-wide policy); an explicit policy
    dispatches it through :func:`~repro.linalg.compute_svd`, so
    ``svd="randomized"`` engages the seeded Halko kernel.
    """
    X, Y = check_embedding_pair(X, Y, same_dim=True)
    # R = U V^T where Y^T X = U S V^T (standard Procrustes solution).
    M = Y.T @ X
    if policy is None:
        U, _, Vt = np.linalg.svd(M, full_matrices=False)
    else:
        U, _, Vt = compute_svd(M, min(M.shape), policy=policy)
    return U @ Vt


def alignment_residual(X: np.ndarray, Y: np.ndarray, R: np.ndarray) -> float:
    """Relative Frobenius misfit ``||X - Y R||_F / ||X||_F`` of a rotation.

    Cheap (one ``(n, d)`` GEMM) and exact, so it doubles as the quality check
    of a randomized-policy rotation: a rotation from a randomized
    factorization that landed on the same solution as LAPACK produces the
    same residual.  Returns 0.0 for an all-zero ``X``.
    """
    X = np.asarray(X)
    norm = float(np.linalg.norm(X))
    if norm == 0.0:
        return 0.0
    return float(np.linalg.norm(X - np.asarray(Y) @ np.asarray(R)) / norm)


def align_matrices(
    X: np.ndarray, Y: np.ndarray, *, policy: KernelPolicy | None = None
) -> np.ndarray:
    """Return ``Y`` rotated onto ``X`` with the Procrustes solution."""
    R = orthogonal_procrustes(X, Y, policy=policy)
    return Y @ R


def align_pair(
    reference: Embedding,
    other: Embedding,
    *,
    top_k: int | None = None,
    policy: KernelPolicy | None = None,
) -> Embedding:
    """Align ``other`` to ``reference`` over their common vocabulary.

    The rotation is estimated on the common (optionally top-``k``) rows and
    then applied to *all* rows of ``other`` so the full embedding stays
    usable downstream.  The estimation residual (relative Frobenius misfit
    over the common rows) is recorded in the returned embedding's metadata
    as ``alignment_residual``, so artifacts built from a randomized-policy
    alignment carry their own error estimate.

    Parameters
    ----------
    reference:
        Embedding kept fixed (the paper's Wiki'17 embedding).
    other:
        Embedding to rotate (the paper's Wiki'18 embedding).
    top_k:
        Restrict the rotation estimation to the ``top_k`` most frequent common
        words (``None`` uses every common word).
    policy:
        Kernel policy dispatching the rotation solve's SVD (``None`` = plain
        LAPACK).
    """
    if reference.dim != other.dim:
        raise ValueError(
            f"cannot align embeddings of different dimensions: {reference.dim} vs {other.dim}"
        )
    ref_common, other_common = Embedding.aligned_pair(reference, other, top_k=top_k)
    R = orthogonal_procrustes(ref_common.vectors, other_common.vectors, policy=policy)
    residual = alignment_residual(ref_common.vectors, other_common.vectors, R)
    rotated = other.vectors @ R
    return other.with_vectors(
        rotated,
        aligned_to=reference.metadata.get("corpus", "reference"),
        alignment_residual=residual,
    )
