"""Spans, trace context propagation, and the bounded trace ring.

A *trace* is the tree of timed spans behind one request, identified by a
32-hex trace id.  The active trace travels in a :mod:`contextvars`
variable, so ``span("pipeline.train", ...)`` deep inside the pipeline
attaches to whatever request is executing — and is a near-free no-op
(one context-variable read, two clock reads) when nothing is tracing.

Crossing boundaries:

- **threads** — executors do not copy context; wrap the callable with
  :func:`bind` before submitting it.
- **HTTP** — :func:`propagation_headers` yields ``X-Trace-Id`` /
  ``X-Parent-Span`` headers for outbound requests;
  :func:`context_from_headers` recovers them server-side.
- **processes** — a worker builds a standalone :class:`Trace` from the
  ``trace`` dict in its lease, records spans locally, and ships the rows
  back with its completion; :meth:`TraceBuffer.ingest` stitches them
  into the originating trace.

:class:`TraceBuffer` retains finished traces in two bounded rings — a
sampled *recent* ring and a *slow* ring that always keeps traces whose
root exceeded ``slow_ms`` — serving ``/trace/recent`` and
``/trace/<id>``.
"""

from __future__ import annotations

import random
import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.telemetry.metrics import REGISTRY

TRACE_HEADER = "X-Trace-Id"
PARENT_HEADER = "X-Parent-Span"
REQUEST_ID_HEADER = "X-Request-Id"

_TRACE_ID_OK = frozenset("0123456789abcdefABCDEF-_.")


def new_trace_id() -> str:
    return uuid.uuid4().hex


def _new_span_id() -> str:
    return f"{random.getrandbits(64):016x}"


def _clean_id(value: str | None, limit: int = 64) -> str | None:
    """Accept only plausible ids from the wire (bounded, header-safe)."""
    if not value:
        return None
    value = value.strip()
    if not value or len(value) > limit or not set(value) <= _TRACE_ID_OK:
        return None
    return value


class SpanHandle:
    """One timed operation inside a trace.  ``set(**attrs)`` adds detail."""

    __slots__ = ("name", "span_id", "parent_id", "start", "duration_ms", "attrs")

    def __init__(self, name: str, parent_id: str | None, attrs: dict | None = None):
        self.name = name
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.start = time.time()
        self.duration_ms: float | None = None
        self.attrs = dict(attrs) if attrs else {}

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def to_row(self, trace_id: str) -> dict:
        return {
            "trace_id": trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration_ms": round(self.duration_ms, 3) if self.duration_ms is not None else None,
            "attrs": self.attrs,
        }


class _NoopSpan:
    """Shared stand-in yielded by ``span(...)`` when nothing is tracing."""

    __slots__ = ()
    span_id = None

    def set(self, **attrs) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _Ctx:
    __slots__ = ("trace", "handle")

    def __init__(self, trace: "Trace", handle: SpanHandle):
        self.trace = trace
        self.handle = handle


_current: ContextVar[_Ctx | None] = ContextVar("repro_trace_ctx", default=None)


class Trace:
    """A span collector for one trace id; usable with or without a buffer."""

    __slots__ = ("trace_id", "name", "root", "spans", "truncated", "max_spans",
                 "sampled", "finished", "_lock")

    def __init__(self, name: str, trace_id: str | None = None,
                 parent_id: str | None = None, max_spans: int = 512,
                 sampled: bool = True, attrs: dict | None = None):
        self.trace_id = trace_id or new_trace_id()
        self.name = name
        self.max_spans = max_spans
        self.sampled = sampled
        self.truncated = 0
        self.finished = False
        self._lock = threading.Lock()
        self.root = SpanHandle(name, parent_id, attrs)
        self.spans: list[SpanHandle | dict] = [self.root]

    # -- span recording ----------------------------------------------------
    def begin_span(self, name: str, parent_id: str | None, attrs: dict | None) -> SpanHandle:
        handle = SpanHandle(name, parent_id, attrs)
        with self._lock:
            if len(self.spans) < self.max_spans:
                self.spans.append(handle)
            else:
                self.truncated += 1
        return handle

    def add_span(self, name: str, start: float, duration_ms: float,
                 parent_id: str | None = None, **attrs) -> None:
        """Record an already-timed span (e.g. coordinator lease wait)."""
        handle = SpanHandle(name, parent_id if parent_id is not None else self.root.span_id, attrs)
        handle.start = start
        handle.duration_ms = duration_ms
        with self._lock:
            if len(self.spans) < self.max_spans:
                self.spans.append(handle)
            else:
                self.truncated += 1

    def extend(self, rows: list[dict]) -> int:
        """Stitch span rows recorded in another process into this trace."""
        added = 0
        with self._lock:
            for row in rows:
                if len(self.spans) >= self.max_spans:
                    self.truncated += 1
                    continue
                self.spans.append(dict(row, trace_id=self.trace_id))
                added += 1
        return added

    # -- activation --------------------------------------------------------
    @contextmanager
    def active(self, handle: SpanHandle | None = None):
        """Make this trace current so nested ``span(...)`` calls attach."""
        token = _current.set(_Ctx(self, handle or self.root))
        try:
            yield self
        finally:
            _current.reset(token)

    def finish(self, duration_ms: float | None = None) -> None:
        if duration_ms is None:
            duration_ms = (time.time() - self.root.start) * 1e3
        self.root.duration_ms = duration_ms
        self.finished = True

    # -- export ------------------------------------------------------------
    @property
    def duration_ms(self) -> float | None:
        return self.root.duration_ms

    def span_rows(self, include_root: bool = True) -> list[dict]:
        with self._lock:
            spans = list(self.spans)
        rows = []
        for entry in spans:
            if not include_root and entry is self.root:
                continue
            rows.append(entry.to_row(self.trace_id) if isinstance(entry, SpanHandle) else entry)
        return rows

    def summary(self) -> dict:
        with self._lock:
            n_spans = len(self.spans)
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "start": self.root.start,
            "duration_ms": self.root.duration_ms,
            "spans": n_spans,
            "truncated": self.truncated,
            "slow": bool(self.root.attrs.get("slow")),
        }


class SubTrace:
    """A child view over an already-open trace.

    A sub-request that arrives carrying the id of a trace this process
    owns (e.g. a worker fetching artifacts with the grid's trace headers)
    *joins* it as a child span instead of opening a competing trace under
    the same id — which would clobber the root in the buffer and orphan
    every span stitched afterwards.
    """

    __slots__ = ("trace", "root")

    def __init__(self, trace: Trace, handle: SpanHandle):
        self.trace = trace
        self.root = handle

    @property
    def trace_id(self) -> str:
        return self.trace.trace_id

    @property
    def sampled(self) -> bool:
        return self.trace.sampled

    def active(self):
        return self.trace.active(self.root)

    def finish(self, duration_ms: float | None = None) -> None:
        if duration_ms is None:
            duration_ms = (time.time() - self.root.start) * 1e3
        self.root.duration_ms = duration_ms


class NullTrace:
    """Placeholder when tracing is disabled: keeps the id, records nothing."""

    __slots__ = ("trace_id",)
    sampled = False
    root = NOOP_SPAN
    truncated = 0

    def __init__(self, trace_id: str | None = None):
        self.trace_id = trace_id or new_trace_id()

    @contextmanager
    def active(self):
        yield self

    def finish(self, duration_ms: float | None = None) -> None:
        pass


# --------------------------------------------------------------------------
# Module-level helpers: the instrumentation surface
# --------------------------------------------------------------------------

@contextmanager
def span(name: str, metric: str | None = None, label: str | None = None, **attrs):
    """Time a block; attach to the current trace and/or a histogram.

    ``metric``/``label`` route the duration into ``REGISTRY`` (e.g.
    ``metric="phase", label="train"``) regardless of whether a trace is
    active, so latency histograms populate even with tracing sampled out.
    With no active trace and no metric this is a near-free no-op.
    """
    ctx = _current.get()
    start = time.perf_counter()
    if ctx is None:
        try:
            yield NOOP_SPAN
        finally:
            if metric is not None:
                REGISTRY.observe(metric, label or name, (time.perf_counter() - start) * 1e3)
        return
    handle = ctx.trace.begin_span(name, parent_id=ctx.handle.span_id, attrs=attrs)
    token = _current.set(_Ctx(ctx.trace, handle))
    try:
        yield handle
    except BaseException as exc:
        handle.set(error=type(exc).__name__)
        raise
    finally:
        _current.reset(token)
        duration = (time.perf_counter() - start) * 1e3
        handle.duration_ms = duration
        if metric is not None:
            REGISTRY.observe(metric, label or name, duration)


def annotate(**attrs) -> None:
    """Set attributes on the innermost active span (no-op when untraced)."""
    ctx = _current.get()
    if ctx is not None:
        ctx.handle.set(**attrs)


def current_context() -> _Ctx | None:
    return _current.get()


def current_trace_id() -> str | None:
    ctx = _current.get()
    return ctx.trace.trace_id if ctx is not None else None


@contextmanager
def use_context(ctx: _Ctx | None):
    """Re-activate a context captured with :func:`current_context`."""
    if ctx is None:
        yield
        return
    token = _current.set(ctx)
    try:
        yield
    finally:
        _current.reset(token)


def bind(fn):
    """Wrap ``fn`` to carry the current trace context into another thread."""
    ctx = _current.get()
    if ctx is None:
        return fn

    def bound(*args, **kwargs):
        token = _current.set(ctx)
        try:
            return fn(*args, **kwargs)
        finally:
            _current.reset(token)

    return bound


def propagation_headers() -> dict:
    """Outbound HTTP headers carrying the current trace context."""
    ctx = _current.get()
    if ctx is None:
        return {}
    return {TRACE_HEADER: ctx.trace.trace_id, PARENT_HEADER: ctx.handle.span_id or ""}


def context_from_headers(headers: dict) -> tuple[str | None, str | None]:
    """``(trace_id, parent_span_id)`` from inbound (lowercased) headers."""
    trace_id = _clean_id(headers.get(TRACE_HEADER.lower())) or _clean_id(
        headers.get(REQUEST_ID_HEADER.lower()))
    parent_id = _clean_id(headers.get(PARENT_HEADER.lower()))
    return trace_id, parent_id


def remote_context() -> dict | None:
    """The current context as a JSON-safe dict (for lease payloads)."""
    ctx = _current.get()
    if ctx is None:
        return None
    return {"trace_id": ctx.trace.trace_id, "parent_span": ctx.handle.span_id}


# --------------------------------------------------------------------------
# Retention: the bounded trace ring
# --------------------------------------------------------------------------

class TraceBuffer:
    """Bounded retention of finished traces with a slow-trace keep-policy.

    ``sample`` is the probability a request is traced at all (decided up
    front so a fully sampled-out server pays no span cost); ``slow_ms``
    forces collection of *every* request and guarantees retention of any
    trace whose root latency reaches the threshold, in a separate ring
    that fast traffic cannot evict.
    """

    def __init__(self, capacity: int = 256, slow_capacity: int = 64,
                 sample: float = 1.0, slow_ms: float = 500.0,
                 max_spans: int = 512, rng: random.Random | None = None):
        self.capacity = max(1, int(capacity))
        self.slow_capacity = max(1, int(slow_capacity))
        self.sample = min(max(float(sample), 0.0), 1.0)
        self.slow_ms = max(float(slow_ms), 0.0)
        self.max_spans = max(8, int(max_spans))
        self._rng = rng or random.Random()
        self._lock = threading.Lock()
        self._open: dict[str, Trace] = {}
        self._recent: list[Trace] = []
        self._slow: list[Trace] = []
        self._by_id: dict[str, Trace] = {}
        self._counters = {
            "started": 0, "untraced": 0, "joined": 0, "kept": 0,
            "kept_slow": 0, "sampled_out": 0, "spans_ingested": 0,
            "spans_dropped": 0,
        }

    @property
    def enabled(self) -> bool:
        return self.sample > 0.0 or self.slow_ms > 0.0

    # -- lifecycle ---------------------------------------------------------
    def start(self, name: str, trace_id: str | None = None,
              parent_id: str | None = None, **attrs) -> "Trace | SubTrace | NullTrace":
        if trace_id:
            with self._lock:
                owner = self._open.get(trace_id) or self._by_id.get(trace_id)
                if owner is not None:
                    self._counters["joined"] += 1
            if owner is not None:
                handle = owner.begin_span(
                    name, parent_id=parent_id or owner.root.span_id,
                    attrs=dict(attrs) if attrs else None,
                )
                return SubTrace(owner, handle)
        with self._lock:
            sampled = self.sample > 0.0 and self._rng.random() < self.sample
            if not sampled and not self.slow_ms:
                self._counters["untraced"] += 1
                return NullTrace(trace_id)
            self._counters["started"] += 1
            trace = Trace(name, trace_id=trace_id, parent_id=parent_id,
                          max_spans=self.max_spans, sampled=sampled, attrs=attrs)
            self._open[trace.trace_id] = trace
            return trace

    def finish(self, trace: "Trace | SubTrace | NullTrace",
               duration_ms: float | None = None) -> None:
        trace.finish(duration_ms)
        if isinstance(trace, (NullTrace, SubTrace)):
            return   # a SubTrace's owner is retained when *it* finishes
        with self._lock:
            self._open.pop(trace.trace_id, None)
            duration = trace.duration_ms or 0.0
            if self.slow_ms and duration >= self.slow_ms:
                trace.root.set(slow=True)
                self._counters["kept_slow"] += 1
                self._keep_locked(self._slow, self.slow_capacity, trace)
            elif trace.sampled:
                self._counters["kept"] += 1
                self._keep_locked(self._recent, self.capacity, trace)
            else:
                self._counters["sampled_out"] += 1

    @contextmanager
    def request(self, name: str, trace_id: str | None = None,
                parent_id: str | None = None, **attrs):
        """Trace one request end-to-end: start, activate, finish, retain."""
        trace = self.start(name, trace_id=trace_id, parent_id=parent_id, **attrs)
        start = time.perf_counter()
        try:
            with trace.active():
                yield trace
        finally:
            self.finish(trace, (time.perf_counter() - start) * 1e3)

    def _keep_locked(self, ring: list[Trace], capacity: int, trace: Trace) -> None:
        ring.append(trace)
        self._by_id[trace.trace_id] = trace
        while len(ring) > capacity:
            evicted = ring.pop(0)
            current = self._by_id.get(evicted.trace_id)
            if current is evicted and not any(
                    t is evicted for other in (self._recent, self._slow) for t in other):
                del self._by_id[evicted.trace_id]

    # -- stitching ---------------------------------------------------------
    def ingest(self, rows: list[dict]) -> int:
        """Attach span rows shipped from another process to their traces."""
        if not rows:
            return 0
        by_trace: dict[str, list[dict]] = {}
        for row in rows:
            if not isinstance(row, dict):
                continue
            trace_id = _clean_id(str(row.get("trace_id") or ""))
            if trace_id:
                by_trace.setdefault(trace_id, []).append(row)
        added = 0
        for trace_id, trace_rows in by_trace.items():
            with self._lock:
                trace = self._open.get(trace_id) or self._by_id.get(trace_id)
            if trace is None:
                with self._lock:
                    self._counters["spans_dropped"] += len(trace_rows)
                continue
            added += trace.extend(trace_rows)
        with self._lock:
            self._counters["spans_ingested"] += added
        return added

    def add_span(self, trace_id: str | None, name: str, start: float,
                 duration_ms: float, **attrs) -> bool:
        """Record a pre-timed span on an open trace (coordinator-side)."""
        if not trace_id:
            return False
        with self._lock:
            trace = self._open.get(trace_id) or self._by_id.get(trace_id)
        if trace is None:
            return False
        trace.add_span(name, start, duration_ms, **attrs)
        return True

    # -- retrieval ---------------------------------------------------------
    def get(self, trace_id: str) -> list[dict] | None:
        with self._lock:
            trace = self._by_id.get(trace_id) or self._open.get(trace_id)
        return trace.span_rows() if trace is not None else None

    def recent(self, limit: int = 50) -> list[dict]:
        with self._lock:
            traces = {id(t): t for t in self._recent + self._slow}
        ordered = sorted(traces.values(), key=lambda t: t.root.start, reverse=True)
        return [t.summary() for t in ordered[:max(1, int(limit))]]

    def counters(self) -> dict:
        with self._lock:
            out = dict(self._counters)
            out["open"] = len(self._open)
            out["retained"] = len(self._by_id)
            out["sample"] = self.sample
            out["slow_ms"] = self.slow_ms
        return out
