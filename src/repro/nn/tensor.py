"""A small reverse-mode autodiff ``Tensor`` over NumPy arrays.

Define-by-run: every operation records a closure that propagates gradients to
its inputs; :meth:`Tensor.backward` runs a topological sort and accumulates
gradients into ``.grad``.  Only the operations needed by the downstream models
in this repository are implemented, but they are implemented with full NumPy
broadcasting support so the layer code stays natural.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

# Grad mode is per-thread: the serving layer evaluates models on its worker
# pool and in-process cluster workers train concurrently, so a process-global
# flag would let one thread's ``no_grad`` evaluation silently strip another
# thread's training graph (backward() then fails mid-fit).
_GRAD_STATE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (used for evaluation)."""
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with an optional gradient and autodiff history."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")
    __array_priority__ = 100  # ensure ndarray + Tensor dispatches to Tensor

    def __init__(
        self,
        data,
        *,
        requires_grad: bool = False,
        _prev: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        name: str | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._prev = _prev if self.requires_grad or _prev else ()
        self._backward = _backward
        self.name = name

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def as_tensor(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @staticmethod
    def zeros(shape, *, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, *, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    # -- metadata --------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # -- graph construction ----------------------------------------------------

    def _make(self, data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._prev = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    # -- arithmetic -------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.data.shape))
            other._accumulate(_unbroadcast(grad, other.data.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-Tensor.as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return Tensor.as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data**2), other.data.shape)
            )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor.as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = Tensor.as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
            elif a.ndim == 1:
                # (d,) @ (d, m) -> (m,)
                self._accumulate(grad @ b.T)
                other._accumulate(np.outer(a, grad))
            elif b.ndim == 1:
                # (n, d) @ (d,) -> (n,)
                self._accumulate(np.outer(grad, b))
                other._accumulate(a.T @ grad)
            else:
                grad_a = grad @ np.swapaxes(b, -1, -2)
                grad_b = np.swapaxes(a, -1, -2) @ grad
                self._accumulate(_unbroadcast(grad_a, a.shape))
                other._accumulate(_unbroadcast(grad_b, b.shape))

        return self._make(out_data, (self, other), backward)

    # -- reductions -------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if np.isscalar(axis) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(mask * g)

        return self._make(out_data, (self,), backward)

    # -- elementwise nonlinearities ---------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -500, 500))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(np.clip(self.data, 1e-300, None))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / np.clip(self.data, 1e-300, None))

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    # -- shape manipulation -------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.data.shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        axes = axes or None
        if axes and len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes) if axes else self.data.T

        def backward(grad: np.ndarray) -> None:
            if axes:
                inverse = np.argsort(axes)
                self._accumulate(grad.transpose(inverse))
            else:
                self._accumulate(grad.T)

        return self._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.as_tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]

        def backward(grad: np.ndarray) -> None:
            splits = np.cumsum(sizes)[:-1]
            for tensor, piece in zip(tensors, np.split(grad, splits, axis=axis)):
                tensor._accumulate(piece)

        requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
        out = Tensor(out_data, requires_grad=requires)
        if requires:
            out._prev = tuple(tensors)
            out._backward = backward
        return out

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.as_tensor(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            pieces = np.split(grad, len(tensors), axis=axis)
            for tensor, piece in zip(tensors, pieces):
                tensor._accumulate(np.squeeze(piece, axis=axis))

        requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
        out = Tensor(out_data, requires_grad=requires)
        if requires:
            out._prev = tuple(tensors)
            out._backward = backward
        return out

    # -- backward pass -------------------------------------------------------------

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor (default seed gradient: ones)."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        # Topological order over the graph reachable from self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
