"""Content-addressed corpus snapshots: a corpus frozen into the artifact store.

The paper's core scenario is embeddings retrained as the corpus *grows*; the
monitor subsystem (:mod:`repro.monitor`) makes that a live workload by
cutting the ingested corpus into immutable **snapshots**.  A snapshot is a
:class:`~repro.corpus.synthetic.Corpus` serialised into two artifacts keyed
by a hash of the corpus content:

* ``corpus-snapshot/<key>.npz`` -- the token stream (one concatenated int64
  array plus per-document lengths) and per-document topics;
* ``corpus-snapshot-meta/<key>.json`` -- the word list and human-readable
  metadata.

Because the key is a content hash, snapshots are location-independent like
every other artifact: a pipeline configured with
``snapshot_pair=(key_a, key_b)`` can be rebuilt on any host whose store
fabric can reach the bytes (cluster workers fetch them through their remote
tier), which is what makes snapshot retrains distributable over the fleet.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

import numpy as np

from repro.corpus.synthetic import Corpus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.store import ArtifactStore

__all__ = [
    "SNAPSHOT_KIND",
    "SNAPSHOT_META_KIND",
    "snapshot_key",
    "store_snapshot",
    "load_snapshot",
    "snapshot_exists",
]

SNAPSHOT_KIND = "corpus-snapshot"
SNAPSHOT_META_KIND = "corpus-snapshot-meta"


def _flatten(corpus: Corpus) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    tokens = (
        np.concatenate([np.asarray(d, dtype=np.int64) for d in corpus.documents])
        if corpus.documents
        else np.empty(0, dtype=np.int64)
    )
    lengths = np.array([len(d) for d in corpus.documents], dtype=np.int64)
    topics = np.asarray(corpus.document_topics, dtype=np.int64)
    return tokens, lengths, topics


def snapshot_key(corpus: Corpus) -> str:
    """Content hash of a corpus (word list, token stream, topics, name).

    Matches the store's 24-hex key idiom (:func:`repro.engine.store.config_hash`)
    so snapshot keys serve directly as ``/artifacts`` names and grid-axis
    values.
    """
    tokens, lengths, topics = _flatten(corpus)
    digest = hashlib.sha256()
    digest.update("\x00".join(corpus.word_list).encode("utf-8"))
    digest.update(b"\x01")
    digest.update(corpus.name.encode("utf-8"))
    digest.update(b"\x01")
    digest.update(lengths.tobytes())
    digest.update(tokens.tobytes())
    digest.update(topics.tobytes())
    return digest.hexdigest()[:24]


def store_snapshot(store: "ArtifactStore", corpus: Corpus) -> str:
    """Freeze ``corpus`` into ``store``; returns its content-addressed key.

    Idempotent: re-storing identical content lands on the same key (and the
    same bytes), so repeated cuts of an unchanged corpus cost nothing new.
    """
    key = snapshot_key(corpus)
    tokens, lengths, topics = _flatten(corpus)
    store.put_arrays(
        SNAPSHOT_KIND, key, {"tokens": tokens, "lengths": lengths, "topics": topics}
    )
    store.put_json(
        SNAPSHOT_META_KIND, key,
        {
            "words": list(corpus.word_list),
            "name": corpus.name,
            "n_documents": len(corpus.documents),
            "n_tokens": int(tokens.size),
        },
    )
    return key


def load_snapshot(store: "ArtifactStore", key: str) -> Corpus:
    """Rebuild the :class:`Corpus` frozen under ``key``.

    Raises ``KeyError`` when either artifact is missing -- a snapshot is only
    usable when both its token stream and its word list are reachable.
    """
    arrays = store.get_arrays(SNAPSHOT_KIND, key)
    meta = store.get_json(SNAPSHOT_META_KIND, key)
    if arrays is None or meta is None:
        raise KeyError(f"corpus snapshot {key!r} is not in the artifact store")
    lengths = np.asarray(arrays["lengths"], dtype=np.int64)
    tokens = np.asarray(arrays["tokens"], dtype=np.int64)
    documents = [
        np.ascontiguousarray(piece)
        for piece in np.split(tokens, np.cumsum(lengths)[:-1])
    ] if lengths.size else []
    return Corpus(
        word_list=[str(w) for w in meta["words"]],
        documents=documents,
        document_topics=np.asarray(arrays["topics"], dtype=np.int64),
        name=str(meta["name"]),
    )


def snapshot_exists(store: "ArtifactStore", key: str) -> bool:
    """Whether both snapshot artifacts are reachable through ``store``."""
    return (
        store.get_arrays(SNAPSHOT_KIND, key) is not None
        and store.get_json(SNAPSHOT_META_KIND, key) is not None
    )
