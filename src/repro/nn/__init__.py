"""A minimal reverse-mode automatic differentiation engine and NN layers.

The paper's downstream models (linear bag-of-words classifier, CNN sentence
classifier, BiLSTM tagger with optional CRF) are trained with PyTorch in the
original artifact.  Offline we build the substrate ourselves: a small
define-by-run autograd engine over NumPy arrays (:mod:`repro.nn.tensor`),
standard layers, recurrent cells, a linear-chain CRF, and optimisers.
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn import functional
from repro.nn.layers import Dropout, Embedding, Linear, Module, ReLU, Sequential, Tanh
from repro.nn.recurrent import BiLSTM, LSTM, LSTMCell
from repro.nn.conv import Conv1d, max_over_time
from repro.nn.crf import LinearChainCRF
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.data import BatchIterator, pad_sequences

__all__ = [
    "Adam",
    "BatchIterator",
    "BiLSTM",
    "Conv1d",
    "Dropout",
    "Embedding",
    "LSTM",
    "LSTMCell",
    "Linear",
    "LinearChainCRF",
    "Module",
    "Optimizer",
    "ReLU",
    "SGD",
    "Sequential",
    "Tanh",
    "Tensor",
    "functional",
    "max_over_time",
    "no_grad",
    "pad_sequences",
]
