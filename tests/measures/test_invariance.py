"""Measure-invariance tests: identities every registered measure must satisfy.

Three families:

* every registered measure is 0 on an identical pair;
* EIS / PIP / k-NN are invariant under a shared orthogonal rotation of both
  embeddings (they only depend on inner products / subspaces);
* measures flagged ``requires_same_dim`` reject mismatched dimensions with a
  clear error.

Plus the pinned behaviour of the top-k vocabulary restriction, which used to
be a silent no-op on vocabularies smaller than ``top_k``.
"""

import numpy as np
import pytest

from repro.measures.base import MEASURES, aligned_top_k_pair
from repro.measures.eigenspace_instability import EigenspaceInstability
from repro.measures.knn import KNNDistance
from repro.measures.pip_loss import PIPLoss


def make_measure(name: str, rng: np.random.Generator, n: int = 40):
    """Instantiate a registered measure (EIS needs anchors)."""
    cls = MEASURES.get(name)
    if name == "eis":
        anchors = rng.standard_normal((n, 10))
        return cls(anchors, anchors + 0.1 * rng.standard_normal((n, 10)))
    if name == "1-knn":
        return cls(k=3, num_queries=n, seed=0)
    return cls()


def orthogonal(rng: np.random.Generator, d: int) -> np.ndarray:
    q, _ = np.linalg.qr(rng.standard_normal((d, d)))
    return q


class TestZeroOnIdenticalPair:
    @pytest.mark.parametrize("name", sorted(MEASURES))
    def test_identical_pair_scores_zero(self, name, rng):
        n = 40
        measure = make_measure(name, rng, n=n)
        X = rng.standard_normal((n, 6))
        assert measure.compute(X, X.copy()) == pytest.approx(0.0, abs=1e-7)


class TestRotationInvariance:
    """EIS, PIP and k-NN depend only on rotation-invariant quantities."""

    @pytest.mark.parametrize("name", ["eis", "pip", "1-knn"])
    def test_shared_rotation_leaves_value_unchanged(self, name, rng):
        n, d = 40, 6
        measure = make_measure(name, rng, n=n)
        X = rng.standard_normal((n, d))
        Y = X + 0.3 * rng.standard_normal((n, d))
        Q = orthogonal(rng, d)
        base = measure.compute(X, Y)
        rotated = measure.compute(X @ Q, Y @ Q)
        assert rotated == pytest.approx(base, rel=1e-6, abs=1e-9)

    def test_eis_invariant_even_with_fixed_anchors(self, rng):
        """Rotating the *pair* but not the anchors must not move EIS: the
        measure sees only the left singular subspaces, which ``X @ Q`` shares
        with ``X``."""
        n, d = 30, 5
        E = rng.standard_normal((n, 8))
        measure = EigenspaceInstability(E, E + 0.1 * rng.standard_normal((n, 8)))
        X = rng.standard_normal((n, d))
        Y = rng.standard_normal((n, d))
        Q = orthogonal(rng, d)
        assert measure.compute(X @ Q, Y @ Q) == pytest.approx(
            measure.compute(X, Y), rel=1e-6
        )

    def test_pip_zero_for_pure_rotation(self, rng):
        X = rng.standard_normal((25, 5))
        Q = orthogonal(rng, 5)
        assert PIPLoss().compute(X, X @ Q) == pytest.approx(0.0, abs=1e-6)

    def test_knn_neighbourhoods_survive_rotation(self, rng):
        X = rng.standard_normal((30, 5))
        Q = orthogonal(rng, 5)
        assert KNNDistance(k=3, num_queries=30).compute(X, X @ Q) == pytest.approx(0.0)


class TestSameDimRequirement:
    def same_dim_measures(self):
        return [name for name in MEASURES if MEASURES.get(name).requires_same_dim]

    def test_flagged_measures_exist(self):
        assert "semantic-displacement" in self.same_dim_measures()

    @pytest.mark.parametrize("name", ["semantic-displacement"])
    def test_mismatched_dims_rejected_with_clear_error(self, name, rng):
        measure = make_measure(name, rng)
        X = rng.standard_normal((20, 6))
        Y = rng.standard_normal((20, 4))
        with pytest.raises(ValueError, match="equal dimensions"):
            measure.compute(X, Y)

    @pytest.mark.parametrize("name", ["eis", "pip", "1-knn", "1-eigenspace-overlap"])
    def test_other_measures_accept_mismatched_dims(self, name, rng):
        measure = make_measure(name, rng)
        X = rng.standard_normal((40, 6))
        Y = rng.standard_normal((40, 4))
        assert np.isfinite(measure.compute(X, Y))


class TestTopKRestriction:
    """Pins the top-k slice: effective when k < |common vocab|, warns when not."""

    def test_top_k_smaller_than_vocab_restricts(self, embedding_pair):
        emb_a, emb_b = embedding_pair
        k = emb_a.n_words // 2
        ra, rb = aligned_top_k_pair(emb_a, emb_b, top_k=k)
        assert ra.n_words == k
        assert rb.n_words == k
        # The slice keeps the k most frequent words.
        assert ra.vocab.words == emb_a.vocab.words[:k]

    def test_top_k_exceeding_vocab_warns_and_uses_all_words(self, embedding_pair):
        emb_a, emb_b = embedding_pair
        with pytest.warns(UserWarning, match="exceeds the common vocabulary"):
            ra, _ = aligned_top_k_pair(emb_a, emb_b, top_k=emb_a.n_words + 1)
        assert ra.n_words == emb_a.n_words

    def test_top_k_equal_to_vocab_does_not_warn(self, embedding_pair, recwarn):
        emb_a, emb_b = embedding_pair
        ra, _ = aligned_top_k_pair(emb_a, emb_b, top_k=emb_a.n_words)
        assert ra.n_words == emb_a.n_words
        assert not [w for w in recwarn if issubclass(w.category, UserWarning)]

    def test_top_k_none_disables_slice_and_warning(self, embedding_pair, recwarn):
        emb_a, emb_b = embedding_pair
        ra, _ = aligned_top_k_pair(emb_a, emb_b, top_k=None)
        assert ra.n_words == emb_a.n_words
        assert not [w for w in recwarn if issubclass(w.category, UserWarning)]

    def test_measure_interface_emits_warning_on_small_vocab(self, embedding_pair):
        emb_a, emb_b = embedding_pair
        with pytest.warns(UserWarning, match="top_k=10000"):
            result = PIPLoss().compute_embeddings(emb_a, emb_b)  # default top-k
        assert result.n_words == emb_a.n_words
