"""Tests for memory accounting of dimension-precision combinations."""

import pytest

from repro.compression.memory import (
    DimensionPrecision,
    bits_per_word,
    dimension_precision_grid,
    memory_of,
    pairs_for_budget,
)


class TestBitsPerWord:
    def test_product(self):
        assert bits_per_word(100, 4) == 400

    def test_invalid(self):
        with pytest.raises(ValueError):
            bits_per_word(0, 4)
        with pytest.raises(ValueError):
            bits_per_word(4, -1)

    def test_memory_of_embedding(self, embedding):
        assert memory_of(embedding) == embedding.dim * 32
        quantized = embedding.with_vectors(embedding.vectors, precision=2)
        assert memory_of(quantized) == embedding.dim * 2


class TestGrid:
    def test_paper_grid_size(self):
        grid = dimension_precision_grid()
        assert len(grid) == 36  # 6 dims x 6 precisions
        assert grid == sorted(grid, key=lambda dp: (dp.memory, dp.dim))

    def test_custom_grid(self):
        grid = dimension_precision_grid((8, 16), (1, 2))
        assert DimensionPrecision(8, 1) in grid
        assert len(grid) == 4

    def test_str(self):
        assert str(DimensionPrecision(25, 8)) == "d=25,b=8"


class TestPairsForBudget:
    def test_budgets_have_multiple_choices(self):
        budgets = pairs_for_budget(dimensions=(8, 16, 32), precisions=(1, 2, 4, 8, 32))
        assert budgets, "expected at least one shared memory budget"
        for memory, combos in budgets.items():
            assert len(combos) >= 2
            assert all(c.memory == memory for c in combos)

    def test_paper_example_budget(self):
        """dim 800 x 2 bits and dim 200 x 8 bits share a 1600-bit budget."""
        budgets = pairs_for_budget()
        assert 1600 in budgets
        combos = {(c.dim, c.precision) for c in budgets[1600]}
        assert (800, 2) in combos and (200, 8) in combos

    def test_no_collision_returns_empty(self):
        assert pairs_for_budget(dimensions=(3,), precisions=(1, 5)) == {}
