"""Tests for the Vocabulary container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.vocabulary import Vocabulary


class TestConstruction:
    def test_frequency_ordering(self):
        vocab = Vocabulary({"rare": 1, "common": 10, "mid": 5})
        assert vocab.words == ["common", "mid", "rare"]
        assert vocab["common"] == 0

    def test_ties_break_lexicographically(self):
        vocab = Vocabulary({"b": 2, "a": 2})
        assert vocab.words == ["a", "b"]

    def test_min_count_filters(self):
        vocab = Vocabulary({"a": 5, "b": 1}, min_count=2)
        assert "b" not in vocab
        assert len(vocab) == 1

    def test_from_documents(self):
        vocab = Vocabulary.from_documents([["a", "b", "a"], ["b", "c"]])
        assert vocab.count("a") == 2
        assert vocab.count("b") == 2
        assert vocab.count("c") == 1

    def test_from_documents_max_size(self):
        vocab = Vocabulary.from_documents([["a", "a", "b", "c"]], max_size=2)
        assert len(vocab) == 2
        assert "a" in vocab


class TestLookups:
    def test_round_trip(self):
        vocab = Vocabulary({"x": 3, "y": 2, "z": 1})
        for word in vocab.words:
            assert vocab.id_to_word(vocab[word]) == word

    def test_word_to_id_default(self):
        vocab = Vocabulary({"x": 1})
        assert vocab.word_to_id("missing") is None
        assert vocab.word_to_id("missing", -1) == -1

    def test_counts_aligned_with_ids(self):
        vocab = Vocabulary({"x": 3, "y": 7})
        np.testing.assert_array_equal(vocab.counts, [7, 3])
        assert vocab.total_count == 10

    def test_most_common(self):
        vocab = Vocabulary({"x": 3, "y": 7, "z": 1})
        assert vocab.most_common(2) == [("y", 7), ("x", 3)]


class TestEncode:
    def test_encode_drops_unknown(self):
        vocab = Vocabulary({"a": 2, "b": 1})
        np.testing.assert_array_equal(vocab.encode(["a", "zzz", "b"]), [0, 1])

    def test_encode_keep_unknown(self):
        vocab = Vocabulary({"a": 2, "b": 1})
        np.testing.assert_array_equal(
            vocab.encode(["a", "zzz", "b"], drop_unknown=False), [0, -1, 1]
        )

    def test_decode(self):
        vocab = Vocabulary({"a": 2, "b": 1})
        assert vocab.decode([1, 0]) == ["b", "a"]


class TestTruncateAndIntersect:
    def test_truncate_keeps_most_frequent(self):
        vocab = Vocabulary({"a": 5, "b": 3, "c": 1})
        small = vocab.truncate(2)
        assert small.words == ["a", "b"]

    def test_truncate_invalid(self):
        with pytest.raises(ValueError):
            Vocabulary({"a": 1}).truncate(0)

    def test_intersect_order_follows_self(self):
        a = Vocabulary({"x": 5, "y": 3, "z": 1})
        b = Vocabulary({"y": 9, "z": 2})
        assert a.intersect(b) == ["y", "z"]

    def test_equality(self):
        assert Vocabulary({"a": 1, "b": 2}) == Vocabulary({"a": 5, "b": 9})
        assert Vocabulary({"a": 1}) != Vocabulary({"b": 1})


@settings(max_examples=30, deadline=None)
@given(st.dictionaries(st.text(alphabet="abcdefg", min_size=1, max_size=4),
                       st.integers(min_value=1, max_value=50), min_size=1, max_size=20))
def test_property_id_roundtrip_and_monotone_counts(counts):
    """Ids are a bijection onto words and ordered by non-increasing count."""
    vocab = Vocabulary(counts)
    assert len(vocab) == len(counts)
    for word in counts:
        assert vocab.id_to_word(vocab[word]) == word
    arr = vocab.counts
    assert all(arr[i] >= arr[i + 1] for i in range(len(arr) - 1))
