"""Rolling retrains: the monitor's snapshot-cut -> cluster-retrain loop.

:class:`InstabilityMonitor` is the online-monitoring subsystem's facade.  It
owns the :class:`~repro.monitor.ingest.CorpusIngestor` (growing vocabulary +
co-occurrence deltas), cuts content-addressed corpus snapshots into the
service's :class:`~repro.engine.store.ArtifactStore`, and -- on every new
snapshot (or a configurable wall-clock cadence) -- schedules a **rolling
retrain** of the embedding grid over the (previous, current) snapshot pair.

Retrains are ordinary grid runs: the snapshot keys ride in
``PipelineConfig.snapshot_pair``, so the run is reconstructible from JSON
and dispatches through the existing execution fabric unchanged --
``distributed=True`` leases it to the ``repro-worker`` fleet through the
service's :class:`~repro.cluster.coordinator.ClusterCoordinator` (leases,
ancestry gating, replication, crash-safety all apply), and the local mode
runs the same plan through a :class:`~repro.engine.scheduler.GridEngine`.
Either way the records are bit-identical to an equivalent batch grid run,
and because every artifact is content-addressed in the shared store, a
**warm re-evaluation of an already-measured version pair trains nothing**
(the aggregated :class:`~repro.monitor.drift.DriftReport` itself is cached
as a ``monitor-report`` artifact, so the grid is not even re-dispatched).

Retrains run on one background worker thread (ingestion answers
immediately; retrains for successive snapshots queue and execute in
order) unless ``sync=True`` pins them inline for deterministic tests.
"""

from __future__ import annotations

import dataclasses
import json
import math
import queue
import threading
import urllib.request
from collections import deque
from collections.abc import Mapping
from typing import TYPE_CHECKING

from repro.corpus.snapshots import store_snapshot
from repro.engine.store import config_hash
from repro.monitor.drift import DriftEvaluator, DriftReport
from repro.monitor.events import MonitorEventLog
from repro.monitor.ingest import CorpusIngestor
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.instability.grid import GridRecord
    from repro.serving.service import StabilityService

logger = get_logger(__name__)

__all__ = ["MonitorConfig", "InstabilityMonitor"]

#: Store kind of cached per-version-pair drift reports.
REPORT_KIND = "monitor-report"


@dataclasses.dataclass(frozen=True)
class MonitorConfig:
    """Knobs of the online instability monitor."""

    #: Cut a snapshot every N ingested batches (callers can force/suppress a
    #: cut per request with the ingest endpoint's ``cut`` parameter).
    snapshot_every_batches: int = 1
    #: Dispatch a retrain whenever a new snapshot lands (a version >= 2).
    retrain_on_snapshot: bool = True
    #: Also cut snapshots on a wall-clock cadence (seconds; 0 disables).  A
    #: cadence tick only cuts when new documents arrived since the last cut.
    cadence_seconds: float = 0.0
    #: Lease retrains to the ``repro-worker`` fleet through the service's
    #: cluster coordinator instead of executing in-process.
    distributed: bool = False
    #: Co-occurrence window of the ingestion accumulator.
    window_size: int = 8
    #: Bounded version/report history length.
    history: int = 16
    #: Bounded event-log length (``/monitor/events``).
    max_events: int = 1024
    #: Drift-alert thresholds: measure name (or ``"disagreement"``) -> bound.
    #: Empty means observe without alerting.
    thresholds: Mapping[str, float] = dataclasses.field(default_factory=dict)
    #: Retrain grid axes; ``None`` defers to the service's pipeline config.
    algorithms: tuple[str, ...] | None = None
    dimensions: tuple[int, ...] | None = None
    precisions: tuple[int, ...] | None = None
    seeds: tuple[int, ...] | None = None
    tasks: tuple[str, ...] | None = None
    model_type: str = "bow"
    #: Run retrains inline on the ingesting thread (deterministic tests).
    sync: bool = False
    corpus_name: str = "monitor"
    #: POST each ``drift_alert`` event to this URL as JSON (``None`` = off).
    webhook_url: str | None = None
    #: Delivery retries after the first attempt (bounded backoff between).
    webhook_retries: int = 2
    #: Per-attempt socket timeout in seconds.
    webhook_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.snapshot_every_batches < 1:
            raise ValueError("snapshot_every_batches must be >= 1")
        if self.cadence_seconds < 0:
            raise ValueError("cadence_seconds must be >= 0")
        if self.history < 1:
            raise ValueError("history must be >= 1")
        for name, bound in dict(self.thresholds).items():
            if not isinstance(bound, (int, float)) or math.isnan(float(bound)):
                raise ValueError(f"threshold {name!r} must be a number, got {bound!r}")
        if self.webhook_retries < 0:
            raise ValueError("webhook_retries must be >= 0")
        if self.webhook_timeout <= 0:
            raise ValueError("webhook_timeout must be > 0")


class InstabilityMonitor:
    """Online instability monitoring over an evolving corpus.

    Parameters
    ----------
    service:
        The :class:`~repro.serving.service.StabilityService` whose store,
        pipeline configuration and cluster coordinator the monitor rides on.
    config:
        :class:`MonitorConfig`.
    """

    def __init__(
        self, service: "StabilityService", config: MonitorConfig | None = None
    ) -> None:
        self.service = service
        self.config = config or MonitorConfig()
        self.ingestor = CorpusIngestor(
            window_size=self.config.window_size, corpus_name=self.config.corpus_name
        )
        self.drift = DriftEvaluator(self.config.thresholds, history=self.config.history)
        self.events = MonitorEventLog(self.config.max_events)
        self._versions: deque[dict] = deque(maxlen=self.config.history)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._pending = 0
        self._version = 0
        self._last_key: str | None = None
        self._batches_since_cut = 0
        self._new_since_cut = False
        self._counters = {
            "batches_ingested": 0,
            "documents_ingested": 0,
            "tokens_ingested": 0,
            "snapshots_cut": 0,
            "snapshots_skipped": 0,
            "retrains_dispatched": 0,
            "retrains_completed": 0,
            "retrains_failed": 0,
            "retrain_records": 0,
            "reports_warm": 0,
            "drift_alerts": 0,
            "local_embedding_trainings": 0,
            "webhook_delivered": 0,
            "webhook_failed": 0,
        }
        self._closed = threading.Event()
        self._queue: "queue.Queue[tuple | None]" = queue.Queue()
        self._worker: threading.Thread | None = None
        self._cadence: threading.Thread | None = None
        if not self.config.sync:
            self._worker = threading.Thread(
                target=self._retrain_loop, name="monitor-retrain", daemon=True
            )
            self._worker.start()
        if self.config.cadence_seconds > 0:
            self._cadence = threading.Thread(
                target=self._cadence_loop, name="monitor-cadence", daemon=True
            )
            self._cadence.start()

    # -- lifecycle -------------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Stop the retrain worker and cadence threads (idempotent)."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._queue.put(None)
        for thread in (self._worker, self._cadence):
            if thread is not None:
                thread.join(timeout)

    def __enter__(self) -> "InstabilityMonitor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no retrain is queued or running; False on timeout."""
        with self._idle:
            return self._idle.wait_for(lambda: self._pending == 0, timeout)

    # -- ingestion + snapshot cutting --------------------------------------------

    def ingest(self, documents, *, cut: bool | None = None) -> dict:
        """Merge a document batch; maybe cut a snapshot and schedule a retrain.

        ``cut`` forces (``True``) or suppresses (``False``) the snapshot cut
        this batch would otherwise trigger per ``snapshot_every_batches``.
        Returns ingest stats plus the cut outcome.
        """
        batch_stats = self.ingestor.add_batch(documents)
        with self._lock:
            self._counters["batches_ingested"] += 1
            self._counters["documents_ingested"] += batch_stats["batch_documents"]
            self._counters["tokens_ingested"] += batch_stats["batch_tokens"]
            self._batches_since_cut += 1
            self._new_since_cut = True
            due = self._batches_since_cut >= self.config.snapshot_every_batches
        should_cut = due if cut is None else bool(cut)
        outcome: dict = {"ingested": batch_stats, "snapshot": None, "version": None}
        if should_cut:
            cut_result = self.cut_snapshot()
            outcome.update(cut_result)
        outcome["monitor_version"] = self.version
        return outcome

    def cut_snapshot(self) -> dict:
        """Freeze the ingested corpus into a content-addressed snapshot.

        An unchanged corpus hashes to the previous key and is skipped (no
        new version, no retrain).  A new key becomes version ``v+1``; when
        ``retrain_on_snapshot`` is set and a previous version exists, a
        retrain over ``(key_v, key_v+1)`` is scheduled.
        """
        corpus = self.ingestor.snapshot_corpus()
        key = store_snapshot(self.service.store, corpus)
        stats = self.ingestor.stats()
        with self._lock:
            self._batches_since_cut = 0
            self._new_since_cut = False
            if key == self._last_key:
                self._counters["snapshots_skipped"] += 1
                return {"snapshot": key, "version": self._version, "cut": False}
            previous_key, previous_version = self._last_key, self._version
            self._version += 1
            version = self._version
            self._last_key = key
            self._counters["snapshots_cut"] += 1
            self._versions.append(
                {
                    "version": version,
                    "snapshot": key,
                    "documents": stats["documents"],
                    "tokens": stats["tokens"],
                    "vocab_size": stats["vocab_size"],
                }
            )
        self.events.emit(
            "snapshot_cut",
            version=version,
            snapshot=key,
            documents=stats["documents"],
            tokens=stats["tokens"],
            vocab_size=stats["vocab_size"],
        )
        logger.info(
            "monitor snapshot v%d cut: %s (%d documents, %d tokens, %d words)",
            version, key, stats["documents"], stats["tokens"], stats["vocab_size"],
        )
        if self.config.retrain_on_snapshot and previous_key is not None:
            self._schedule_retrain(previous_version, previous_key, version, key)
        return {"snapshot": key, "version": version, "cut": True}

    # -- retrains ------------------------------------------------------------------

    def _schedule_retrain(
        self, base_version: int, base_key: str, version: int, key: str
    ) -> None:
        with self._idle:
            self._pending += 1
            self._counters["retrains_dispatched"] += 1
        job = (base_version, base_key, version, key)
        if self.config.sync:
            self._run_job(job)
        else:
            self._queue.put(job)

    def _retrain_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            self._run_job(job)

    def _run_job(self, job: tuple) -> None:
        base_version, base_key, version, key = job
        try:
            self.evaluate_pair(base_version, base_key, version, key)
        except Exception:
            logger.exception(
                "monitor retrain v%d -> v%d failed", base_version, version
            )
            with self._lock:
                self._counters["retrains_failed"] += 1
        finally:
            with self._idle:
                self._pending -= 1
                self._idle.notify_all()

    def retrain_config(self, base_key: str, key: str):
        """The retrain's pipeline config: the service's, re-pointed at the pair."""
        overrides: dict = {"snapshot_pair": (base_key, key)}
        for axis in ("algorithms", "dimensions", "precisions", "seeds", "tasks"):
            value = getattr(self.config, axis)
            if value:
                overrides[axis] = tuple(value)
        return dataclasses.replace(self.service.pipeline.config, **overrides)

    def _report_key(self, config) -> str:
        from repro.cluster.coordinator import config_wire_payload

        return config_hash(
            {
                "kind": REPORT_KIND,
                "config": config_wire_payload(config),
                "model_type": self.config.model_type,
            }
        )

    def evaluate_pair(
        self, base_version: int, base_key: str, version: int, key: str,
        *, force: bool = False,
    ) -> DriftReport:
        """Retrain over one snapshot pair and aggregate its drift report.

        The report is cached content-addressed (``monitor-report``): an
        already-measured pair answers from the store without dispatching a
        grid at all -- and even a ``force``d re-run trains nothing, because
        every embedding/measure artifact of the pair is already cached.
        """
        config = self.retrain_config(base_key, key)
        report_key = self._report_key(config)
        if not force:
            cached = self.service.store.get_json(REPORT_KIND, report_key)
            if cached is not None:
                report = DriftReport.from_jsonable(cached)
                self.drift.record(report)
                with self._lock:
                    self._counters["reports_warm"] += 1
                self._emit_report(report, warm=True)
                return report
        records = self._execute_retrain(config, base_version, version)
        report = self.drift.evaluate(
            records,
            base_version=base_version,
            version=version,
            snapshot_pair=(base_key, key),
        )
        self.service.store.put_json(REPORT_KIND, report_key, report.to_jsonable())
        with self._lock:
            self._counters["retrains_completed"] += 1
            self._counters["retrain_records"] += len(records)
        self._emit_report(report, warm=False)
        return report

    def _execute_retrain(
        self, config, base_version: int, version: int
    ) -> "list[GridRecord]":
        if self.config.distributed:
            from repro.cluster.coordinator import config_wire_payload
            from repro.engine.scheduler import plan_grid

            plan = plan_grid(
                config, with_measures=True, model_type=self.config.model_type
            )
            run_id = self.service.coordinator.create_run(
                plan, config_wire_payload(config)
            )
            self.events.emit(
                "retrain_started",
                base_version=base_version,
                version=version,
                snapshot_pair=list(config.snapshot_pair),
                distributed=True,
                run_id=run_id,
            )
            return list(self.service.coordinator.records(run_id, stop=self._closed))
        from repro.engine.scheduler import GridEngine
        from repro.instability.pipeline import InstabilityPipeline

        self.events.emit(
            "retrain_started",
            base_version=base_version,
            version=version,
            snapshot_pair=list(config.snapshot_pair),
            distributed=False,
        )
        pipeline = InstabilityPipeline(config, store=self.service.store)
        # coordinator_url="" pins local execution even when a process-wide
        # default coordinator is configured -- the distributed path above is
        # the monitor's only route to the fleet.
        engine = GridEngine(pipeline, coordinator_url="")
        records = list(
            engine.run_iter(
                with_measures=True, ordered=True, model_type=self.config.model_type
            )
        )
        with self._lock:
            self._counters["local_embedding_trainings"] += pipeline.embedding_train_count
        return records

    def _emit_report(self, report: DriftReport, *, warm: bool) -> None:
        self.events.emit(
            "measures_ready",
            base_version=report.base_version,
            version=report.version,
            snapshot_pair=list(report.snapshot_pair),
            cells=report.cells,
            measures=dict(report.measures),
            disagreement=(
                None if math.isnan(report.disagreement) else report.disagreement
            ),
            warm=warm,
        )
        if report.alerts:
            with self._lock:
                self._counters["drift_alerts"] += len(report.alerts)
            alert_payload = {
                "base_version": report.base_version,
                "version": report.version,
                "snapshot_pair": list(report.snapshot_pair),
                "alerts": [dict(a) for a in report.alerts],
            }
            self.events.emit("drift_alert", **alert_payload)
            logger.warning(
                "drift alert v%d -> v%d: %s",
                report.base_version, report.version, report.alerts,
            )
            self._deliver_webhook(dict(alert_payload, event="drift_alert"))

    def _deliver_webhook(self, payload: dict) -> None:
        """POST one drift alert to the configured webhook, bounded retries.

        Runs on the retrain worker thread (or inline in ``sync`` mode) --
        never on a request path.  A 2xx answer counts as delivered; anything
        else retries ``webhook_retries`` times with a short backoff, then
        counts as failed.  Delivery failures never fail the retrain.
        """
        url = self.config.webhook_url
        if not url:
            return
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        outcome = "no attempt"
        for attempt in range(self.config.webhook_retries + 1):
            if attempt and self._closed.wait(0.2 * attempt):
                break
            try:
                status = self._webhook_post(url, body)
            except Exception as error:
                outcome = f"{type(error).__name__}: {error}"
                continue
            if 200 <= status < 300:
                with self._lock:
                    self._counters["webhook_delivered"] += 1
                return
            outcome = f"HTTP {status}"
        with self._lock:
            self._counters["webhook_failed"] += 1
        logger.warning("drift-alert webhook %s failed: %s", url, outcome)

    def _webhook_post(self, url: str, body: bytes) -> int:
        """One POST attempt; overridable in tests.  Returns the HTTP status."""
        request = urllib.request.Request(
            url, data=body, method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(  # noqa: S310 - operator-supplied URL
            request, timeout=self.config.webhook_timeout
        ) as response:
            response.read()
            return int(response.status)

    # -- cadence -------------------------------------------------------------------

    def _cadence_loop(self) -> None:
        while not self._closed.wait(self.config.cadence_seconds):
            with self._lock:
                due = self._new_since_cut
            if due:
                try:
                    self.cut_snapshot()
                except Exception:  # pragma: no cover - defensive
                    logger.exception("cadence snapshot cut failed")

    # -- observability ---------------------------------------------------------------

    @property
    def version(self) -> int:
        with self._lock:
            return self._version

    def counters(self) -> dict:
        with self._lock:
            counters = dict(self._counters)
            counters["pending_retrains"] = self._pending
        return counters

    def snapshot(self) -> dict:
        """JSON-able monitor state for ``/monitor/status``, ``/metrics`` and
        ``repro.engine.stats()``."""
        with self._lock:
            versions = [dict(v) for v in self._versions]
            version = self._version
            last_key = self._last_key
        last = self.drift.last_report
        return {
            "version": version,
            "last_snapshot": last_key,
            "versions": versions,
            "ingest": self.ingestor.stats(),
            "counters": self.counters(),
            "thresholds": dict(self.drift.thresholds),
            "webhook": self.config.webhook_url,
            "distributed": self.config.distributed,
            "cadence_seconds": self.config.cadence_seconds,
            "snapshot_every_batches": self.config.snapshot_every_batches,
            "last_report": None if last is None else last.to_jsonable(),
            "events_emitted": self.events.emitted,
            "last_event_seq": self.events.last_seq,
        }
