"""Tests for the selection criteria and the pairwise / budget selection tasks."""

import pytest

from repro.instability.grid import GridRecord
from repro.selection.budget import budget_selection_error, group_by_budget
from repro.selection.criteria import HIGH_PRECISION, LOW_PRECISION, ORACLE, measure_criterion
from repro.selection.pairwise import pairwise_selection_error


def make_record(dim, precision, disagreement, *, measures=None, seed=0, task="sst2", algo="mc"):
    return GridRecord(
        algorithm=algo,
        task=task,
        dim=dim,
        precision=precision,
        seed=seed,
        disagreement=disagreement,
        accuracy_a=0.8,
        accuracy_b=0.8,
        measures=measures or {},
    )


@pytest.fixture()
def perfect_measure_records():
    """Records where the 'good' measure exactly tracks disagreement and the
    'bad' measure inversely tracks it."""
    records = []
    settings = [(8, 1, 10.0), (8, 4, 6.0), (16, 2, 5.0), (16, 4, 3.0), (32, 1, 4.0), (32, 4, 1.0)]
    for dim, precision, dis in settings:
        records.append(
            make_record(dim, precision, dis,
                        measures={"good": dis / 100.0, "bad": 1.0 - dis / 100.0})
        )
    return records


class TestCriteria:
    def test_oracle_selects_lowest_disagreement(self, perfect_measure_records):
        chosen = ORACLE.select(perfect_measure_records)
        assert chosen.disagreement == 1.0

    def test_measure_criterion_uses_measure_value(self, perfect_measure_records):
        chosen = measure_criterion("good").select(perfect_measure_records)
        assert chosen.disagreement == 1.0
        chosen_bad = measure_criterion("bad").select(perfect_measure_records)
        assert chosen_bad.disagreement == 10.0

    def test_high_and_low_precision(self, perfect_measure_records):
        assert HIGH_PRECISION.select(perfect_measure_records).precision == 4
        assert LOW_PRECISION.select(perfect_measure_records).precision == 1

    def test_missing_measure_raises(self):
        record = make_record(8, 1, 5.0)
        with pytest.raises(KeyError, match="has no measure"):
            measure_criterion("good").score(record)

    def test_empty_candidates_raise(self):
        with pytest.raises(ValueError):
            ORACLE.select([])


class TestPairwiseSelection:
    def test_perfect_measure_has_zero_error(self, perfect_measure_records):
        results = pairwise_selection_error(perfect_measure_records, measure_criterion("good"))
        assert len(results) == 1
        assert results[0].error_rate == 0.0
        assert results[0].worst_case_error == 0.0
        assert results[0].n_groupings == 15

    def test_inverted_measure_has_full_error(self, perfect_measure_records):
        results = pairwise_selection_error(perfect_measure_records, measure_criterion("bad"))
        assert results[0].error_rate == 1.0
        assert results[0].worst_case_error == pytest.approx(9.0)

    def test_oracle_is_always_perfect(self, perfect_measure_records):
        results = pairwise_selection_error(perfect_measure_records, ORACLE)
        assert results[0].error_rate == 0.0

    def test_identical_settings_are_skipped(self):
        records = [make_record(8, 1, 5.0, measures={"m": 0.1}),
                   make_record(8, 1, 7.0, measures={"m": 0.2})]
        assert pairwise_selection_error(records, measure_criterion("m")) == []

    def test_results_split_by_task_and_algorithm(self, perfect_measure_records):
        extra = [make_record(8, 1, 3.0, measures={"good": 0.03}, task="conll"),
                 make_record(16, 4, 1.0, measures={"good": 0.01}, task="conll")]
        results = pairwise_selection_error(perfect_measure_records + extra,
                                           measure_criterion("good"))
        assert {(r.task, r.algorithm) for r in results} == {("sst2", "mc"), ("conll", "mc")}


class TestBudgetSelection:
    @pytest.fixture()
    def budget_records(self):
        """Two memory budgets, each with two candidate settings."""
        return [
            make_record(8, 4, 6.0, measures={"good": 0.06, "bad": 0.94}),   # 32 bits
            make_record(32, 1, 4.0, measures={"good": 0.04, "bad": 0.96}),  # 32 bits
            make_record(16, 4, 3.0, measures={"good": 0.03, "bad": 0.97}),  # 64 bits
            make_record(8, 8, 5.0, measures={"good": 0.05, "bad": 0.95}),   # 64 bits
        ]

    def test_group_by_budget(self, budget_records):
        budgets = group_by_budget(budget_records)
        assert set(budgets) == {32, 64}
        assert all(len(v) == 2 for v in budgets.values())

    def test_budget_with_single_choice_dropped(self):
        records = [make_record(8, 1, 5.0), make_record(16, 1, 3.0)]
        assert group_by_budget(records) == {}

    def test_perfect_measure_matches_oracle(self, budget_records):
        results = budget_selection_error(budget_records, measure_criterion("good"))
        assert results[0].mean_distance_to_oracle == 0.0
        assert results[0].n_budgets == 2

    def test_inverted_measure_distance(self, budget_records):
        results = budget_selection_error(budget_records, measure_criterion("bad"))
        assert results[0].mean_distance_to_oracle == pytest.approx((2.0 + 2.0) / 2)
        assert results[0].worst_case_distance == pytest.approx(2.0)

    def test_naive_baselines_run(self, budget_records):
        for criterion in (HIGH_PRECISION, LOW_PRECISION, ORACLE):
            results = budget_selection_error(budget_records, criterion)
            assert len(results) == 1
            assert results[0].mean_distance_to_oracle >= 0.0
