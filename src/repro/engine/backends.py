"""Pluggable byte-level storage backends for the artifact store.

A backend stores opaque payloads under ``(kind, name)`` -- ``name`` is the
content-hash key plus the codec suffix (``<key>.json`` / ``<key>.npz``), so a
backend never needs to understand an artifact to move it.  The
:class:`~repro.engine.store.ArtifactStore` stacks backends into read-through /
write-back tiers; the codecs (:mod:`repro.engine.codecs`) translate at the
boundary.

Backends:

* :class:`MemoryBackend` -- in-process dict of payloads, optionally
  LRU-bounded; useful as a hot tier in front of a slow (remote) tier.
* :class:`DiskBackend` -- today's on-disk layout (``root/<kind>/<name>``),
  written via a durable atomic temp-file + ``os.replace`` + fsync protocol.
* :class:`ShardedBackend` -- deterministic consistent-hash fan-out over N
  child backends (N local directories, N remote peers, or a mix); the same
  ``(kind, name)`` maps to the same shard in every process on every host.
* :class:`RemoteBackend` -- stdlib HTTP client speaking the serving layer's
  ``/artifacts/<kind>/<name>`` endpoints, with per-thread keep-alive
  connections; any running ``repro-serve`` instance is a valid peer.
* :class:`ReplicatedBackend` -- N-way replication over any mix of the above:
  writes fan out to every replica, reads are served first-success with
  **read-repair** (a hit found on one replica is written back to the
  replicas that missed or held a corrupt copy), and writes that cannot
  reach a replica are queued as **hinted handoff** entries, drained when
  the replica looks healthy again.

Every backend counts its traffic (:class:`TierStats`); the store surfaces the
counters through ``repro.engine.stats()`` as ``store_tiers``.
"""

from __future__ import annotations

import bisect
import hashlib
import http.client
import io
import json
import os
import queue
import random
import tempfile
import threading
import time
import zipfile
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Sequence
from urllib.parse import quote, urlsplit

from repro.telemetry.trace import propagation_headers
from repro.utils.io import ensure_dir
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = [
    "AsyncReplicator",
    "CircuitOpenError",
    "TierStats",
    "StoreBackend",
    "MemoryBackend",
    "DiskBackend",
    "ShardedBackend",
    "RemoteBackend",
    "ReplicatedBackend",
    "atomic_write_bytes",
    "backend_from_spec",
    "payload_intact",
]


@dataclass
class TierStats:
    """Traffic counters of one storage tier."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    deletes: int = 0
    #: Backend I/O failures survived (network errors, unreadable files);
    #: the tier answered as a miss / best-effort write instead of raising.
    errors: int = 0
    #: Entries dropped by an LRU bound (memory tiers only).
    evictions: int = 0
    #: Write-backs discarded because an async replication queue was full
    #: (see :class:`AsyncReplicator`); the payload never reached this tier.
    dropped: int = 0
    #: Payloads that failed byte-level validation (unparsable JSON, zip CRC
    #: mismatch); the tier answered as a miss and the replication layer
    #: schedules a read-repair from a healthy replica.
    corrupt: int = 0


def atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Durably write ``payload`` via a sibling temp file + atomic rename.

    The temp file is fsynced before ``os.replace`` so a crash mid-write can
    never leave a torn artifact under the final name -- a peer fetching over
    ``/artifacts`` must either see the complete payload or nothing.  The
    directory entry is fsynced best-effort afterwards (some filesystems don't
    support opening directories).
    """
    ensure_dir(path.parent)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - filesystem dependent
        pass
    finally:
        os.close(dir_fd)


def payload_intact(name: str, payload: bytes) -> bool:
    """Cheap byte-level integrity check keyed off the codec suffix.

    ``.json`` payloads must parse; ``.npz`` payloads must be a valid zip
    whose member CRCs check out (``testzip``).  Unknown suffixes are trusted
    -- integrity validation exists to catch torn or bit-flipped replicas,
    not to gatekeep new codecs.
    """
    try:
        if name.endswith(".json"):
            json.loads(payload.decode("utf-8"))
        elif name.endswith(".npz"):
            with zipfile.ZipFile(io.BytesIO(payload)) as archive:
                if archive.testzip() is not None:
                    return False
        return True
    except Exception:
        return False


class StoreBackend:
    """Byte-level storage of ``(kind, name) -> payload`` with counters.

    Subclasses implement the raw ``_get``/``_put``/``_contains``/``_delete``;
    the public methods layer the :class:`TierStats` accounting on top.
    """

    name: str = "backend"
    #: Whether payloads survive this process (disk, sharded disk, remote).
    persistent: bool = False
    #: Whether any operation can reach another node (directly or through a
    #: child backend).  The serving layer's /artifacts handlers exclude such
    #: tiers so symmetric peer configurations can never recurse.
    remote_capable: bool = False

    def __init__(self) -> None:
        self.stats = TierStats()

    @property
    def available(self) -> bool:
        """Whether the backend is currently willing to accept operations.

        Local backends are always available; remote backends report their
        circuit-breaker state, and the replication layer uses this to queue
        hinted handoff instead of paying a known-doomed write.
        """
        return True

    # -- public API (counted) --------------------------------------------------

    def get(self, kind: str, name: str) -> bytes | None:
        payload = self._get(kind, name)
        if payload is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return payload

    def put(self, kind: str, name: str, payload: bytes) -> None:
        self.stats.puts += 1
        self._put(kind, name, payload)

    def contains(self, kind: str, name: str) -> bool:
        return self._contains(kind, name)

    def delete(self, kind: str, name: str) -> None:
        self.stats.deletes += 1
        self._delete(kind, name)

    # -- raw operations --------------------------------------------------------

    def _get(self, kind: str, name: str) -> bytes | None:
        raise NotImplementedError

    def _put(self, kind: str, name: str, payload: bytes) -> None:
        raise NotImplementedError

    def _contains(self, kind: str, name: str) -> bool:
        raise NotImplementedError

    def _delete(self, kind: str, name: str) -> None:
        raise NotImplementedError

    def open_path(self, kind: str, name: str) -> Path | None:
        """On-disk location of a payload, for memory-mapped decoding.

        ``None`` means the backend cannot expose one (memory, remote) or the
        payload is absent; the store then falls back to :meth:`get`.  Probes
        are not counted in :class:`TierStats` -- the store counts the hit
        once a mapped decode actually succeeds.
        """
        return None

    # -- reconstruction / observability ---------------------------------------

    def spec(self) -> dict | None:
        """Picklable description to rebuild this backend in another process.

        ``None`` means the backend cannot be reconstructed from a description
        (custom in-test backends); the scheduler then falls back to whatever
        the spec does describe.
        """
        return None

    def describe(self) -> dict:
        """JSON-able counter snapshot for ``repro.engine.stats()``."""
        return {"name": self.name, "persistent": self.persistent, **asdict(self.stats)}


class MemoryBackend(StoreBackend):
    """In-process payload dict, optionally LRU-bounded by entry count."""

    name = "memory"
    persistent = False

    def __init__(self, max_entries: int | None = None) -> None:
        super().__init__()
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._data: OrderedDict[tuple[str, str], bytes] = OrderedDict()
        self._lock = threading.Lock()

    def _get(self, kind: str, name: str) -> bytes | None:
        with self._lock:
            payload = self._data.get((kind, name))
            if payload is not None:
                self._data.move_to_end((kind, name))
            return payload

    def _put(self, kind: str, name: str, payload: bytes) -> None:
        with self._lock:
            self._data[(kind, name)] = payload
            self._data.move_to_end((kind, name))
            while self.max_entries is not None and len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                self.stats.evictions += 1

    def _contains(self, kind: str, name: str) -> bool:
        with self._lock:
            return (kind, name) in self._data

    def _delete(self, kind: str, name: str) -> None:
        with self._lock:
            self._data.pop((kind, name), None)

    def __len__(self) -> int:
        return len(self._data)

    def spec(self) -> dict:
        return {"backend": "memory", "max_entries": self.max_entries}


class DiskBackend(StoreBackend):
    """Directory-tree backend: ``root/<kind>/<name>``, durable atomic writes.

    The layout is byte-compatible with the pre-refactor store's disk tier, so
    existing ``--cache-dir`` trees keep working unchanged.
    """

    name = "disk"
    persistent = True

    def __init__(self, root: str | Path) -> None:
        super().__init__()
        self.root = Path(root)
        ensure_dir(self.root)

    def _path(self, kind: str, name: str) -> Path:
        return self.root / kind / name

    def _get(self, kind: str, name: str) -> bytes | None:
        path = self._path(kind, name)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as error:  # pragma: no cover - environment dependent
            logger.warning("disk tier failed reading %s: %s", path, error)
            self.stats.errors += 1
            return None

    def _put(self, kind: str, name: str, payload: bytes) -> None:
        atomic_write_bytes(self._path(kind, name), payload)

    def _contains(self, kind: str, name: str) -> bool:
        return self._path(kind, name).exists()

    def _delete(self, kind: str, name: str) -> None:
        self._path(kind, name).unlink(missing_ok=True)

    def open_path(self, kind: str, name: str) -> Path | None:
        path = self._path(kind, name)
        return path if path.exists() else None

    def spec(self) -> dict:
        return {"backend": "disk", "root": str(self.root)}

    def describe(self) -> dict:
        return {**super().describe(), "root": str(self.root)}


def _ring_hash(token: str) -> int:
    return int.from_bytes(hashlib.sha256(token.encode("utf-8")).digest()[:8], "big")


class ShardedBackend(StoreBackend):
    """Deterministic consistent-hash fan-out over N child backends.

    Each shard claims ``points_per_shard`` pseudo-random points on a hash
    ring; a key is owned by the shard whose point follows the key's hash.
    The mapping depends only on SHA-256 of shard index and key (never on
    Python's salted ``hash``), so every process and every host routes the
    same ``(kind, name)`` to the same shard -- the property the multi-host
    grid relies on.  Consistent hashing (rather than ``hash % N``) keeps
    most keys in place when a shard is added or removed.
    """

    name = "sharded"

    def __init__(
        self, shards: Sequence[StoreBackend], *, points_per_shard: int = 64
    ) -> None:
        super().__init__()
        if not shards:
            raise ValueError("ShardedBackend needs at least one shard")
        self.shards = list(shards)
        self.points_per_shard = int(points_per_shard)
        self.persistent = any(shard.persistent for shard in self.shards)
        self.remote_capable = any(shard.remote_capable for shard in self.shards)
        self._ring: list[tuple[int, int]] = sorted(
            (_ring_hash(f"shard:{index}:{point}"), index)
            for index in range(len(self.shards))
            for point in range(points_per_shard)
        )
        self._ring_keys = [entry[0] for entry in self._ring]

    @classmethod
    def local(cls, root: str | Path, n_shards: int) -> "ShardedBackend":
        """N disk shards under ``root/shard-00 .. root/shard-<N-1>``."""
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        return cls(
            [DiskBackend(Path(root) / f"shard-{index:02d}") for index in range(n_shards)]
        )

    def shard_index(self, kind: str, name: str) -> int:
        """The shard owning ``(kind, name)`` (exposed for tests and tooling)."""
        point = _ring_hash(f"{kind}/{name}")
        slot = bisect.bisect_right(self._ring_keys, point) % len(self._ring)
        return self._ring[slot][1]

    def shard_for(self, kind: str, name: str) -> StoreBackend:
        return self.shards[self.shard_index(kind, name)]

    def _get(self, kind: str, name: str) -> bytes | None:
        return self.shard_for(kind, name).get(kind, name)

    def _put(self, kind: str, name: str, payload: bytes) -> None:
        self.shard_for(kind, name).put(kind, name, payload)

    def _contains(self, kind: str, name: str) -> bool:
        return self.shard_for(kind, name).contains(kind, name)

    def _delete(self, kind: str, name: str) -> None:
        self.shard_for(kind, name).delete(kind, name)

    def open_path(self, kind: str, name: str) -> Path | None:
        return self.shard_for(kind, name).open_path(kind, name)

    def spec(self) -> dict | None:
        shard_specs = [shard.spec() for shard in self.shards]
        if any(spec is None for spec in shard_specs):
            return None
        # points_per_shard shapes the hash ring: dropping it would make a
        # worker rebuilt from this spec route keys to different shards.
        return {
            "backend": "sharded",
            "shards": shard_specs,
            "points_per_shard": self.points_per_shard,
        }

    def describe(self) -> dict:
        return {
            **super().describe(),
            "n_shards": len(self.shards),
            "shards": [shard.describe() for shard in self.shards],
        }


class CircuitOpenError(ConnectionError):
    """Fail-fast rejection because a peer's circuit breaker is open.

    Distinguished from a real transport failure so retry logic never burns
    an attempt against a breaker that would reject it instantly anyway.
    """


class RemoteBackend(StoreBackend):
    """HTTP peer backend speaking the serving layer's ``/artifacts`` API.

    Any running ``repro-serve`` instance is a peer: ``GET`` fetches a
    payload, ``PUT`` replicates one, ``HEAD`` probes existence.  Connections
    are kept alive per thread and transparently re-established once when a
    peer closes an idle connection.  A dead or unreachable peer degrades to
    cache misses and dropped best-effort writes (counted in ``errors``) --
    remote tiers accelerate, they must never take the computation down.
    After a connection failure the backend cools down for
    ``failure_cooldown`` seconds, answering misses immediately instead of
    paying the full socket timeout on every subsequent operation.  Once the
    cooldown elapses the breaker goes **half-open**: exactly one request is
    let through to probe the peer while every other thread keeps failing
    fast; a successful probe closes the breaker, a failed one restarts the
    cooldown.  ``clock`` injects a monotonic time source for tests.
    """

    name = "remote"
    persistent = True
    remote_capable = True

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 10.0,
        failure_cooldown: float = 30.0,
        put_retry_delay: float = 0.1,
        clock=time.monotonic,
        rng: random.Random | None = None,
        sleep=time.sleep,
    ) -> None:
        super().__init__()
        if "://" not in url:
            url = f"http://{url}"
        split = urlsplit(url)
        if split.scheme not in ("http", "https"):
            raise ValueError(f"unsupported remote store scheme {split.scheme!r}")
        if not split.hostname:
            raise ValueError(f"remote store URL has no host: {url!r}")
        self.url = url
        self.timeout = float(timeout)
        self.failure_cooldown = float(failure_cooldown)
        self.put_retry_delay = float(put_retry_delay)
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._scheme = split.scheme
        self._host = split.hostname
        self._port = split.port
        self._base_path = split.path.rstrip("/")
        self._local = threading.local()
        self._clock = clock
        #: Breaker state, guarded by ``_state_lock``: ``_down_until`` is the
        #: monotonic deadline of the cooldown (0.0 = closed, healthy), and
        #: ``_probing`` marks the single half-open probe in flight.
        self._state_lock = threading.Lock()
        self._down_until = 0.0
        self._probing = False

    # -- connection management -------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            factory = (
                http.client.HTTPSConnection
                if self._scheme == "https"
                else http.client.HTTPConnection
            )
            conn = factory(self._host, self._port, timeout=self.timeout)
            self._local.conn = conn
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - best effort
                pass
            self._local.conn = None

    def _artifact_path(self, kind: str, name: str) -> str:
        return f"{self._base_path}/artifacts/{quote(kind, safe='')}/{quote(name, safe='')}"

    def _request(
        self,
        method: str,
        kind: str,
        name: str,
        body: bytes | None = None,
        *,
        force: bool = False,
    ) -> tuple[int, bytes]:
        return self._request_path(
            method, self._artifact_path(kind, name), body, force=force
        )

    def _request_path(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        *,
        force: bool = False,
        content_type: str = "application/octet-stream",
    ) -> tuple[int, bytes]:
        """One keep-alive request; retries once on a stale pooled connection.

        Circuit breaker: while the peer is cooling down after a failure,
        raise :class:`CircuitOpenError` immediately -- otherwise every lookup
        of a busy grid run would block for the full socket timeout against a
        dead peer.  When the cooldown has elapsed, exactly one caller is
        admitted as the half-open probe; concurrent callers keep failing fast
        until the probe settles, so a still-dead peer costs one socket
        timeout per cooldown window instead of one per thread.  ``force``
        bypasses the breaker gate (used by the single deliberate write
        retry); success still closes the breaker and failure re-arms it.
        """
        probing = False
        if not force:
            with self._state_lock:
                if self._down_until:
                    if self._clock() < self._down_until:
                        raise CircuitOpenError(
                            f"remote store {self.url} cooling down after a failure"
                        )
                    if self._probing:
                        raise CircuitOpenError(
                            f"remote store {self.url} half-open: probe already in flight"
                        )
                    self._probing = probing = True
        last_error: Exception | None = None
        try:
            for attempt in (0, 1):
                conn = self._connection()
                try:
                    headers = {"Content-Type": content_type} if body else {}
                    headers.update(propagation_headers())
                    conn.request(method, path, body=body, headers=headers)
                    response = conn.getresponse()
                    payload = response.read()
                    with self._state_lock:
                        self._down_until = 0.0
                        if probing:
                            self._probing = False
                    return response.status, payload
                except (http.client.HTTPException, ConnectionError, OSError) as error:
                    # The peer may have closed an idle keep-alive connection;
                    # reconnect once before treating the peer as unreachable.
                    self._drop_connection()
                    last_error = error
        except BaseException:
            # Unexpected exit (KeyboardInterrupt mid-request): release the
            # probe slot without closing the breaker.
            if probing:
                with self._state_lock:
                    self._probing = False
            raise
        with self._state_lock:
            # Re-arm the cooldown and release the probe slot in ONE critical
            # section: releasing first would let a concurrent caller slip in
            # as a second probe against the still-expired deadline.
            self._down_until = self._clock() + self.failure_cooldown
            if probing:
                self._probing = False
        raise ConnectionError(f"remote store {self.url} unreachable: {last_error}")

    # -- raw operations --------------------------------------------------------

    def _get(self, kind: str, name: str) -> bytes | None:
        try:
            status, payload = self._request("GET", kind, name)
        except ConnectionError as error:
            logger.warning("remote tier GET %s/%s failed: %s", kind, name, error)
            self.stats.errors += 1
            return None
        if status == 200:
            return payload
        if status != 404:
            logger.warning("remote tier GET %s/%s: HTTP %d", kind, name, status)
            self.stats.errors += 1
        return None

    def get_many(
        self, items: Sequence[tuple[str, str]]
    ) -> dict[tuple[str, str], bytes | None]:
        """Fetch many payloads in one ``POST /artifacts/batch`` round trip.

        Returns ``{(kind, name): payload-or-None}`` for every requested item
        (``None`` = the peer doesn't hold it).  Batches over the server's
        per-request item cap are paginated client-side.  A failed or
        malformed batch response degrades to per-item :meth:`get` calls --
        the batch endpoint accelerates warm-up against a modern peer, but an
        older peer (404 on the path) or a flaky one must never lose reads
        the single-artifact API would have served.
        """
        requested = [(str(kind), str(name)) for kind, name in items]
        results: dict[tuple[str, str], bytes | None] = {}
        page_size = 256  # mirrors the server's _MAX_BATCH_ITEMS
        for start in range(0, len(requested), page_size):
            page = requested[start:start + page_size]
            parsed = self._get_batch(page)
            if parsed is None:
                parsed = {key: self.get(*key) for key in page}
            else:
                for payload in parsed.values():
                    if payload is None:
                        self.stats.misses += 1
                    else:
                        self.stats.hits += 1
            results.update(parsed)
        return results

    def _get_batch(
        self, page: list[tuple[str, str]]
    ) -> dict[tuple[str, str], bytes | None] | None:
        """One batch round trip; ``None`` means fall back to per-item gets."""
        manifest = json.dumps(
            {"items": [{"kind": kind, "name": name} for kind, name in page]}
        ).encode("utf-8")
        try:
            status, body = self._request_path(
                "POST", f"{self._base_path}/artifacts/batch", manifest,
                content_type="application/json",
            )
        except ConnectionError as error:
            logger.warning("remote tier batch GET failed: %s", error)
            self.stats.errors += 1
            return None
        if status != 200:
            if status not in (404, 405):  # pre-batch peers: silent fallback
                logger.warning("remote tier batch GET: HTTP %d", status)
                self.stats.errors += 1
            return None
        try:
            parsed: dict[tuple[str, str], bytes | None] = {}
            offset = 0
            while offset < len(body):
                newline = body.index(b"\n", offset)
                header = json.loads(body[offset:newline].decode("utf-8"))
                offset = newline + 1
                size = int(header["bytes"])
                payload = body[offset:offset + size]
                if len(payload) != size or body[offset + size:offset + size + 1] != b"\n":
                    raise ValueError("truncated batch frame")
                offset += size + 1
                key = (str(header["kind"]), str(header["name"]))
                parsed[key] = payload if header["found"] else None
            if set(parsed) != set(page):
                raise ValueError("batch response does not cover the manifest")
        except (ValueError, KeyError, TypeError) as error:
            logger.warning("remote tier batch response malformed: %s", error)
            self.stats.errors += 1
            return None
        return parsed

    def _put(self, kind: str, name: str, payload: bytes) -> None:
        """Best-effort replication write with one jittered retry.

        Transient failures -- a dropped connection or a 5xx from a peer that
        is restarting -- get a single retry after a short jittered sleep
        (breaker bypassed: this is the deliberate second attempt).  Breaker
        fail-fasts and 4xx responses are not retried; they would fail the
        same way again.  Only writes that stay failed count an error.
        """
        error_detail: object
        try:
            status, _ = self._request("PUT", kind, name, body=payload)
            if status < 300:
                return
            error_detail = f"HTTP {status}"
            transient = status >= 500
        except CircuitOpenError as error:
            logger.warning("remote tier PUT %s/%s failed: %s", kind, name, error)
            self.stats.errors += 1
            return
        except ConnectionError as error:
            error_detail = error
            transient = True
        if not transient:
            logger.warning("remote tier PUT %s/%s: %s", kind, name, error_detail)
            self.stats.errors += 1
            return
        self._sleep(self.put_retry_delay * (0.5 + self._rng.random()))
        try:
            status, _ = self._request("PUT", kind, name, body=payload, force=True)
        except ConnectionError as error:
            logger.warning(
                "remote tier PUT %s/%s failed after retry: %s", kind, name, error
            )
            self.stats.errors += 1
            return
        if status >= 300:
            logger.warning(
                "remote tier PUT %s/%s: HTTP %d after retry", kind, name, status
            )
            self.stats.errors += 1

    def _contains(self, kind: str, name: str) -> bool:
        try:
            status, _ = self._request("HEAD", kind, name)
        except ConnectionError:
            self.stats.errors += 1
            return False
        return status == 200

    def _delete(self, kind: str, name: str) -> None:
        try:
            self._request("DELETE", kind, name)
        except ConnectionError:
            self.stats.errors += 1

    def close(self) -> None:
        """Drop this thread's pooled connection (other threads drop lazily)."""
        self._drop_connection()

    @property
    def breaker_open(self) -> bool:
        """Whether the circuit breaker currently rejects requests fast."""
        with self._state_lock:
            return bool(self._down_until) and self._clock() < self._down_until

    @property
    def available(self) -> bool:
        return not self.breaker_open

    def spec(self) -> dict:
        return {
            "backend": "remote",
            "url": self.url,
            "timeout": self.timeout,
            "failure_cooldown": self.failure_cooldown,
            "put_retry_delay": self.put_retry_delay,
        }

    def describe(self) -> dict:
        return {**super().describe(), "url": self.url, "breaker_open": self.breaker_open}


class ReplicatedBackend(StoreBackend):
    """N-way replication over child backends with read-repair and hints.

    Writes fan out to every replica.  Reads walk the replicas in order and
    return the first intact payload; replicas probed before the hit that
    missed, errored, or held a corrupt copy are **read-repaired** -- the
    healthy payload is written back to them so one surviving copy is enough
    to restore full coverage.  A write (or repair) aimed at a replica that
    is unavailable (circuit breaker open) or whose put fails is queued as a
    **hinted handoff** entry instead of being lost; hints are drained
    opportunistically on later operations once the replica looks healthy
    again, so a peer that restarts converges without operator action.

    Degraded-mode contract: as long as one replica answers, reads succeed
    and writes land somewhere -- replica loss never raises to the caller.
    The hint queue is bounded and deduplicated per ``(replica, kind,
    name)``; overflow drops the oldest hint and counts it (``dropped`` on
    the target replica, ``hints_dropped`` here), keeping degradation
    observable rather than unbounded.

    ``validate`` enables byte-level integrity checks (:func:`payload_intact`)
    on every replica read, turning a bit-flipped copy into a repairable miss
    instead of a poisoned artifact.
    """

    name = "replicated"

    def __init__(
        self,
        replicas: Sequence[StoreBackend],
        *,
        max_hints: int = 512,
        validate: bool = True,
    ) -> None:
        super().__init__()
        if not replicas:
            raise ValueError("ReplicatedBackend needs at least one replica")
        if max_hints < 1:
            raise ValueError(f"max_hints must be >= 1, got {max_hints}")
        self.replicas = list(replicas)
        self.max_hints = int(max_hints)
        self.validate = bool(validate)
        self.persistent = any(replica.persistent for replica in self.replicas)
        self.remote_capable = any(replica.remote_capable for replica in self.replicas)
        self.repairs = 0
        self.hints_queued = 0
        self.hints_drained = 0
        self.hints_dropped = 0
        #: Pending handoff payloads keyed ``(replica_index, kind, name)``;
        #: insertion-ordered so overflow evicts the oldest hint first.
        self._hints: OrderedDict[tuple[int, str, str], bytes] = OrderedDict()
        self._hint_lock = threading.Lock()

    # -- hinted handoff --------------------------------------------------------

    def _queue_hint(self, index: int, kind: str, name: str, payload: bytes) -> None:
        key = (index, kind, name)
        with self._hint_lock:
            if key in self._hints:
                self._hints[key] = payload
                self._hints.move_to_end(key)
                return
            while len(self._hints) >= self.max_hints:
                (old_index, old_kind, old_name), _ = self._hints.popitem(last=False)
                self.hints_dropped += 1
                self.replicas[old_index].stats.dropped += 1
                logger.warning(
                    "hint queue full: dropped %s/%s for replica %d (%s)",
                    old_kind, old_name, old_index, self.replicas[old_index].name,
                )
            self._hints[key] = payload
            self.hints_queued += 1

    def drain_hints(self) -> int:
        """Deliver queued hints to replicas that look available again.

        Called opportunistically before every operation (cheap no-op while
        the queue is empty) and exposed publicly so tests and shutdown paths
        can force a drain.  A replica whose delivery fails gets its hint
        re-queued and is skipped for the rest of this pass -- the next
        successful breaker probe will trigger another attempt.
        """
        if not self._hints:
            return 0
        with self._hint_lock:
            batch = list(self._hints.items())
        drained = 0
        skipped: set[int] = set()
        for (index, kind, name), payload in batch:
            replica = self.replicas[index]
            if index in skipped or not replica.available:
                continue
            with self._hint_lock:
                if self._hints.pop((index, kind, name), None) is None:
                    continue  # another thread delivered it concurrently
            if self._safe_put(replica, kind, name, payload):
                drained += 1
                self.hints_drained += 1
            else:
                skipped.add(index)
                with self._hint_lock:
                    self._hints.setdefault((index, kind, name), payload)
        if drained:
            logger.info("hinted handoff drained %d write(s)", drained)
        return drained

    @property
    def hints_pending(self) -> int:
        return len(self._hints)

    # -- replica write with failure detection ----------------------------------

    def _safe_put(self, replica: StoreBackend, kind: str, name: str, payload: bytes) -> bool:
        """Write to one replica; ``False`` when the write did not land.

        Backends degrade silently (they count ``errors`` instead of
        raising), so failure is detected via the errors-counter delta; an
        exception from a custom backend counts the same way.
        """
        before = replica.stats.errors
        try:
            replica.put(kind, name, payload)
        except Exception as error:
            logger.warning(
                "replica %s rejected write %s/%s: %s", replica.name, kind, name, error
            )
            replica.stats.errors += 1
            return False
        return replica.stats.errors == before

    def _intact(self, replica: StoreBackend, name: str, payload: bytes) -> bool:
        if not self.validate or payload_intact(name, payload):
            return True
        replica.stats.corrupt += 1
        self.stats.corrupt += 1
        logger.warning("replica %s returned a corrupt copy of %s", replica.name, name)
        return False

    # -- raw operations --------------------------------------------------------

    def _get(self, kind: str, name: str) -> bytes | None:
        self.drain_hints()
        behind: list[int] = []
        for index, replica in enumerate(self.replicas):
            if not replica.available:
                behind.append(index)
                continue
            try:
                payload = replica.get(kind, name)
            except Exception as error:
                logger.warning(
                    "replica %s failed reading %s/%s: %s", replica.name, kind, name, error
                )
                replica.stats.errors += 1
                behind.append(index)
                continue
            if payload is None or not self._intact(replica, name, payload):
                behind.append(index)
                continue
            for lagging in behind:
                self._repair(lagging, kind, name, payload)
            return payload
        return None

    def _repair(self, index: int, kind: str, name: str, payload: bytes) -> None:
        """Write a healthy copy back to a replica that missed or was corrupt."""
        replica = self.replicas[index]
        if not replica.available:
            self._queue_hint(index, kind, name, payload)
            return
        if self._safe_put(replica, kind, name, payload):
            self.repairs += 1
            logger.info("read-repaired %s/%s onto replica %s", kind, name, replica.name)
        else:
            self._queue_hint(index, kind, name, payload)

    def _put(self, kind: str, name: str, payload: bytes) -> None:
        self.drain_hints()
        for index, replica in enumerate(self.replicas):
            if not replica.available:
                self._queue_hint(index, kind, name, payload)
                continue
            if not self._safe_put(replica, kind, name, payload):
                self._queue_hint(index, kind, name, payload)

    def _contains(self, kind: str, name: str) -> bool:
        self.drain_hints()
        for replica in self.replicas:
            if not replica.available:
                continue
            try:
                if replica.contains(kind, name):
                    return True
            except Exception:
                replica.stats.errors += 1
        return False

    def _delete(self, kind: str, name: str) -> None:
        for replica in self.replicas:
            try:
                replica.delete(kind, name)
            except Exception:
                replica.stats.errors += 1
        with self._hint_lock:
            for key in [k for k in self._hints if k[1] == kind and k[2] == name]:
                del self._hints[key]

    def open_path(self, kind: str, name: str) -> Path | None:
        """First replica that can expose an on-disk copy (no read-repair).

        Mapped reads bypass the repair machinery deliberately: they prove
        nothing about the *other* replicas, and a mapped decode that later
        fails falls back to :meth:`get`, which repairs as usual.
        """
        for replica in self.replicas:
            path = replica.open_path(kind, name)
            if path is not None:
                return path
        return None

    # -- reconstruction / observability ---------------------------------------

    def spec(self) -> dict | None:
        replica_specs = [replica.spec() for replica in self.replicas]
        if any(spec is None for spec in replica_specs):
            return None
        return {
            "backend": "replicated",
            "replicas": replica_specs,
            "max_hints": self.max_hints,
            "validate": self.validate,
        }

    def describe(self) -> dict:
        return {
            **super().describe(),
            "n_replicas": len(self.replicas),
            "repairs": self.repairs,
            "hints_queued": self.hints_queued,
            "hints_drained": self.hints_drained,
            "hints_dropped": self.hints_dropped,
            "hints_pending": self.hints_pending,
            "replicas": [replica.describe() for replica in self.replicas],
        }


class AsyncReplicator:
    """Background fan-out queue for best-effort tier replication.

    The artifact store's write-back normally replicates to every tier
    synchronously; against a remote tier that puts a network round trip on
    the training hot path.  The replicator instead queues ``(tier, kind,
    name, payload)`` writes and drains them on one daemon thread, so the
    producer returns immediately.

    Semantics are deliberately *lossy but observable*: when the bounded
    queue is full the write is dropped and counted on the target tier's
    :class:`TierStats` (``dropped``) -- replication to a peer accelerates
    the cluster, it must never stall or grow without bound.  Callers that
    need the writes to have landed (a cluster worker about to report a
    group complete, so the coordinator can serve the artifacts to the next
    worker) call :meth:`flush`, a barrier that waits until the queue is
    empty and the in-flight write finished.
    """

    def __init__(self, max_queue: int = 256) -> None:
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = int(max_queue)
        self._queue: "queue.Queue[tuple[StoreBackend, str, str, bytes] | None]" = (
            queue.Queue(maxsize=self.max_queue)
        )
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._pending = 0
        self._submitted = 0
        self._written = 0
        self._dropped = 0
        self._thread: threading.Thread | None = None
        self._closed = False

    def _ensure_thread(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._drain, name="store-replicator", daemon=True
            )
            self._thread.start()

    def submit(self, tier: StoreBackend, kind: str, name: str, payload: bytes) -> bool:
        """Queue one write; returns ``False`` (and counts a drop) when full."""
        with self._lock:
            if self._closed:
                tier.stats.dropped += 1
                self._dropped += 1
                return False
            self._ensure_thread()
            try:
                self._queue.put_nowait((tier, kind, name, payload))
            except queue.Full:
                tier.stats.dropped += 1
                self._dropped += 1
                return False
            self._pending += 1
            self._submitted += 1
            return True

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            tier, kind, name, payload = item
            try:
                tier.put(kind, name, payload)
                with self._lock:
                    self._written += 1
            except Exception as error:  # pragma: no cover - backend dependent
                # Backends already degrade gracefully; this guards custom ones.
                logger.warning(
                    "async replication of %s/%s to %s failed: %s",
                    kind, name, tier.name, error,
                )
                tier.stats.errors += 1
            finally:
                with self._idle:
                    self._pending -= 1
                    if self._pending == 0:
                        self._idle.notify_all()

    def flush(self, timeout: float | None = None) -> bool:
        """Block until every queued write has been attempted.

        Returns ``False`` if ``timeout`` elapsed with writes still pending.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._pending > 0:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def close(self) -> None:
        """Stop accepting writes and let the drain thread exit (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
        if thread is not None:
            self._queue.put(None)
            thread.join(timeout=10.0)

    def describe(self) -> dict:
        """JSON-able counter snapshot (surfaced by ``ArtifactStore``)."""
        with self._lock:
            return {
                "max_queue": self.max_queue,
                "pending": self._pending,
                "submitted": self._submitted,
                "written": self._written,
                "dropped": self._dropped,
            }


def backend_from_spec(spec: dict) -> StoreBackend:
    """Rebuild a backend from its :meth:`StoreBackend.spec` description."""
    backend = spec.get("backend")
    if backend == "memory":
        return MemoryBackend(max_entries=spec.get("max_entries"))
    if backend == "disk":
        return DiskBackend(spec["root"])
    if backend == "sharded":
        return ShardedBackend(
            [backend_from_spec(child) for child in spec["shards"]],
            points_per_shard=spec.get("points_per_shard", 64),
        )
    if backend == "remote":
        return RemoteBackend(
            spec["url"],
            timeout=spec.get("timeout", 10.0),
            failure_cooldown=spec.get("failure_cooldown", 30.0),
            put_retry_delay=spec.get("put_retry_delay", 0.1),
        )
    if backend == "replicated":
        return ReplicatedBackend(
            [backend_from_spec(child) for child in spec["replicas"]],
            max_hints=spec.get("max_hints", 512),
            validate=spec.get("validate", True),
        )
    raise ValueError(f"unknown backend spec {spec!r}")
