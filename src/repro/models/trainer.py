"""Shared training configuration and helpers for the downstream models.

Seeds are split into a *model initialisation* seed and a *sampling order*
seed, because Appendix E.3 of the paper studies those two sources of
randomness separately from the change in embedding training data.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["TrainingConfig", "EarlyStopper"]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyperparameters of a downstream training run.

    Attributes
    ----------
    learning_rate:
        Optimiser step size (the paper tunes this per task/algorithm on
        400-dimensional Wiki'17 embeddings and then holds it fixed).
    epochs:
        Maximum training epochs.
    batch_size:
        Mini-batch size (32 in the paper).
    optimizer:
        ``"adam"`` (sentiment models) or ``"sgd"`` (NER BiLSTM).
    init_seed:
        Model initialisation seed.
    sampling_seed:
        Mini-batch sampling-order seed.
    patience:
        Early-stopping patience in epochs on validation accuracy
        (``None`` disables early stopping).
    anneal_factor:
        Multiply the learning rate by this factor when validation performance
        plateaus (the paper's NER recipe); ``None`` disables annealing.
    fine_tune_embeddings:
        Whether the embedding table is updated during training
        (Appendix E.4).
    """

    learning_rate: float = 1e-2
    epochs: int = 20
    batch_size: int = 32
    optimizer: str = "adam"
    init_seed: int = 0
    sampling_seed: int = 0
    patience: int | None = 5
    anneal_factor: float | None = None
    fine_tune_embeddings: bool = False

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.epochs <= 0 or self.batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError("optimizer must be 'adam' or 'sgd'")

    def with_seed(self, seed: int) -> "TrainingConfig":
        """Convenience: use the same seed for initialisation and sampling.

        This mirrors the paper's main protocol, where the downstream model
        seeds are tied to the embedding seed so that instability comes only
        from the change in embedding training data.
        """
        return replace(self, init_seed=int(seed), sampling_seed=int(seed))


class EarlyStopper:
    """Track the best validation score and signal when to stop / anneal."""

    def __init__(self, patience: int | None):
        self.patience = patience
        self.best_score = -np.inf
        self.best_state: dict | None = None
        self.epochs_without_improvement = 0

    def update(self, score: float, state: dict) -> bool:
        """Record an epoch result; returns True when training should stop."""
        if score > self.best_score:
            self.best_score = score
            self.best_state = state
            self.epochs_without_improvement = 0
            return False
        self.epochs_without_improvement += 1
        if self.patience is None:
            return False
        return self.epochs_without_improvement >= self.patience

    @property
    def should_anneal(self) -> bool:
        return self.patience is not None and self.epochs_without_improvement > 0
