"""The eigenspace instability measure (Section 4, the paper's core contribution).

For embeddings ``X = U S V^T`` and ``X~ = U~ S~ V~^T`` and a positive
semidefinite matrix ``Sigma``, the eigenspace instability (EI) measure is

    EI_Sigma(X, X~) = tr((U U^T + U~ U~^T - 2 U~ U~^T U U^T) Sigma) / tr(Sigma).

Proposition 1 shows that with ``Sigma = E[y y^T]`` this equals the expected
normalised disagreement between the linear-regression models trained on ``X``
and ``X~`` with random label vector ``y``.  In practice the paper instantiates
``Sigma = (E E^T)^alpha + (E~ E~^T)^alpha`` where ``E`` and ``E~`` are
high-dimensional full-precision "anchor" embeddings and ``alpha`` (default 3)
controls how much the high-eigenvalue directions dominate.

Two implementations are provided:

* :func:`eigenspace_instability` -- the efficient ``O(n d^2)`` formulation of
  Appendix B.1 that never materialises an ``n x n`` Gram matrix;
* :func:`eigenspace_instability_exact` -- the direct definition (builds
  ``U U^T``), used in tests to validate the efficient path and in the
  Proposition 1 Monte-Carlo check.

The measure class cooperates with the grid engine: left singular vectors of
the scored pair come from a shared :class:`~repro.measures.base.DecompositionCache`
and the anchor SVD factors -- identical for every (dimension, precision) cell
of the same (algorithm, seed) -- are computed once and memoised (or injected
pre-computed from the engine's artifact store via :class:`AnchorFactors`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embeddings.base import Embedding
from repro.linalg import KernelPolicy, compute_svd, svd_residual_estimate
from repro.measures.base import (
    DEFAULT_TOP_K,
    MEASURES,
    DecompositionCache,
    EmbeddingDistanceMeasure,
    MeasureResult,
    aligned_top_k_pair,
    left_singular_vectors,
)
from repro.utils.validation import check_array, check_embedding_pair, float_dtype_of

__all__ = [
    "AnchorFactors",
    "EigenspaceInstability",
    "anchor_factors",
    "eigenspace_instability",
    "eigenspace_instability_exact",
    "sigma_from_anchors",
]


@dataclass(frozen=True)
class AnchorFactors:
    """SVD factors of an anchor pair defining ``Sigma``: ``P diag(Ra^2) P^T + ...``.

    ``P``/``P_t`` are the left singular vectors of ``E``/``E~`` and
    ``Ra``/``Ra_t`` the singular values raised to ``alpha``.  ``words`` names
    the vocabulary rows the factors were computed over (``None`` = positional).
    ``residual``/``residual_t`` estimate the Frobenius truncation error
    ``||E - P diag(R) W^T||_F`` of each factorization (0.0 for exact
    full-rank factors); the fast serving path folds them into its EIS error
    bound, since a truncated ``Sigma`` drops at most ``residual^(2 alpha)``
    of spectral-trace mass per side.
    """

    P: np.ndarray
    Ra: np.ndarray
    P_t: np.ndarray
    Ra_t: np.ndarray
    words: tuple[str, ...] | None = None
    residual: float = 0.0
    residual_t: float = 0.0

    @property
    def n_words(self) -> int:
        return int(self.P.shape[0])

    def sigma_trace_error(self, alpha: float) -> float:
        """Upper estimate of the nuclear-norm error of the truncated ``Sigma``.

        Every singular value beyond the kept rank satisfies
        ``s_i <= residual`` and the tail ``s_i^2`` sum to ``residual^2``, so
        for ``alpha >= 1`` each tail term ``s_i^(2 alpha) = s_i^2 *
        s_i^(2 alpha - 2)`` is bounded by ``s_i^2 * residual^(2 alpha - 2)``
        and the whole tail by ``residual^(2 alpha)`` per side.
        """
        exponent = 2.0 * max(float(alpha), 1.0)
        return float(self.residual**exponent + self.residual_t**exponent)


def anchor_factors(
    E: np.ndarray, E_tilde: np.ndarray, *, alpha: float = 3.0,
    words: tuple[str, ...] | None = None,
    policy: KernelPolicy | None = None,
    rank: int | None = None,
) -> AnchorFactors:
    """Decompose an anchor pair once so many grid cells can share the factors.

    The decomposition is dispatched through the kernel ``policy``: its dtype
    decides the working precision and its SVD method applies.  With
    ``rank=None`` (the default, bit-identical to the seed path) the
    factorization is the full-rank thin SVD, which every policy resolves to
    exact LAPACK.  An explicit ``rank`` truncates the anchors to their top
    ``rank`` directions -- the hook that lets ``svd="randomized"`` policies
    engage the seeded Halko kernel on the dominant anchor subspace -- and the
    returned factors then carry seeded Gaussian-probe estimates of each
    side's Frobenius truncation residual, which downstream error bounds (the
    fast serving path) fold into their escalation decisions.
    """
    if policy is not None:
        E, E_tilde = policy.cast(E), policy.cast(E_tilde)
    E = check_array(E, name="E", ndim=2, dtype=float_dtype_of(E))
    E_tilde = check_array(E_tilde, name="E_tilde", ndim=2, dtype=float_dtype_of(E_tilde))
    if E.shape[0] != E_tilde.shape[0]:
        raise ValueError("anchor embeddings must share a vocabulary")
    if rank is not None and rank < 1:
        raise ValueError(f"rank must be >= 1 or None, got {rank}")
    P, R, Vt = compute_svd(E, rank, policy=policy)
    P_t, R_t, Vt_t = compute_svd(E_tilde, rank, policy=policy)
    residual = residual_t = 0.0
    if rank is not None and rank < min(E.shape + E_tilde.shape):
        seed = policy.seed if policy is not None else 0
        residual = svd_residual_estimate(E, P, R, Vt, seed=seed)
        residual_t = svd_residual_estimate(E_tilde, P_t, R_t, Vt_t, seed=seed)
    return AnchorFactors(
        P=P, Ra=R**alpha, P_t=P_t, Ra_t=R_t**alpha, words=words,
        residual=residual, residual_t=residual_t,
    )


def sigma_from_anchors(E: np.ndarray, E_tilde: np.ndarray, alpha: float = 3.0) -> np.ndarray:
    """Materialise ``Sigma = (E E^T)^alpha + (E~ E~^T)^alpha`` (test-scale only).

    Exponentiation is in the spectral sense: ``(E E^T)^alpha = P R^{2 alpha} P^T``
    for ``E = P R W^T``.  Only used by the exact/test path -- the efficient path
    never forms this ``n x n`` matrix.
    """
    factors = anchor_factors(E, E_tilde, alpha=alpha)
    return (factors.P * (factors.Ra**2)) @ factors.P.T + (
        factors.P_t * (factors.Ra_t**2)
    ) @ factors.P_t.T


def eigenspace_instability_exact(
    X: np.ndarray, X_tilde: np.ndarray, sigma: np.ndarray
) -> float:
    """Direct evaluation of Definition 2 given an explicit ``Sigma``."""
    X, X_tilde = check_embedding_pair(X, X_tilde)
    sigma = check_array(sigma, name="sigma", ndim=2)
    n = X.shape[0]
    if sigma.shape != (n, n):
        raise ValueError(f"sigma must be ({n}, {n}), got {sigma.shape}")
    U = left_singular_vectors(X)
    U_t = left_singular_vectors(X_tilde)
    P_u = U @ U.T
    P_ut = U_t @ U_t.T
    numerator = np.trace((P_u + P_ut - 2.0 * P_ut @ P_u) @ sigma)
    denominator = np.trace(sigma)
    if denominator <= 0:
        raise ValueError("sigma must have positive trace")
    return float(numerator / denominator)


def _instability_from_factors(
    U: np.ndarray, U_t: np.ndarray, factors: AnchorFactors
) -> float:
    """Trace expansion of Appendix B.1 on pre-decomposed subspaces/anchors.

    All scalar reductions accumulate in float64 so the float32 kernel policy
    only loses precision inside the GEMMs.
    """
    UtU = U_t.T @ U                      # (d~, d)

    def term(Panchor: np.ndarray, Ralpha: np.ndarray) -> float:
        # tr(R^a P^T (UU^T + U~U~^T - 2 U~U~^T U U^T) P R^a) expanded as in B.1.
        A = U.T @ Panchor                # (d, dE)
        B = U_t.T @ Panchor              # (d~, dE)
        t1 = float(np.sum((A * Ralpha[np.newaxis, :]) ** 2, dtype=np.float64))
        t2 = float(np.sum((B * Ralpha[np.newaxis, :]) ** 2, dtype=np.float64))
        M = UtU @ (A * Ralpha[np.newaxis, :])     # (d~, dE)
        t3 = float(np.sum((B * Ralpha[np.newaxis, :]) * M, dtype=np.float64))
        return t1 + t2 - 2.0 * t3

    numerator = term(factors.P, factors.Ra) + term(factors.P_t, factors.Ra_t)
    denominator = float(
        np.sum(factors.Ra**2, dtype=np.float64) + np.sum(factors.Ra_t**2, dtype=np.float64)
    )
    if denominator <= 0:
        raise ValueError("anchor embeddings produce a zero-trace Sigma")
    # Numerical round-off can push the value a hair outside [0, ~2]; clip at 0.
    return float(max(numerator / denominator, 0.0))


def eigenspace_instability(
    X: np.ndarray,
    X_tilde: np.ndarray,
    E: np.ndarray,
    E_tilde: np.ndarray,
    *,
    alpha: float = 3.0,
    cache: DecompositionCache | None = None,
    policy: KernelPolicy | None = None,
) -> float:
    """Efficient eigenspace instability with ``Sigma = (EE^T)^a + (E~E~^T)^a``.

    Implements the trace expansion of Appendix B.1 in ``O(n d^2)`` time and
    ``O(d^2)`` extra memory, where all four matrices are "tall and thin".

    Parameters
    ----------
    X, X_tilde:
        The embedding pair being scored (row-aligned over the same words).
    E, E_tilde:
        The anchor embeddings defining ``Sigma`` (the paper uses the
        highest-dimensional full-precision Wiki'17/Wiki'18 embeddings).
    alpha:
        Eigenvalue weighting exponent (paper default: 3).
    cache:
        Optional shared decomposition cache; the SVDs of ``X`` and ``X_tilde``
        are reused from (or deposited into) it.
    policy:
        Kernel policy applied to the whole evaluation: the scored pair is
        cast to the policy dtype like the anchors, so the float32 path is
        never half-applied.
    """
    if policy is not None:
        X, X_tilde = policy.cast(X), policy.cast(X_tilde)
    X, X_tilde = check_embedding_pair(X, X_tilde)
    n = X.shape[0]
    for name, M in (("E", np.asarray(E)), ("E_tilde", np.asarray(E_tilde))):
        if M.shape[0] != n:
            raise ValueError(f"{name} must have {n} rows, got {M.shape[0]}")

    U = left_singular_vectors(X, cache)
    U_t = left_singular_vectors(X_tilde, cache)
    return _instability_from_factors(
        U, U_t, anchor_factors(E, E_tilde, alpha=alpha, policy=policy)
    )


@MEASURES.register("eis")
class EigenspaceInstability(EmbeddingDistanceMeasure):
    """Eigenspace instability measure with anchor-defined ``Sigma``.

    Parameters
    ----------
    anchor_a, anchor_b:
        Anchor embeddings ``E`` and ``E~`` (either :class:`Embedding` objects
        or raw matrices).  In the paper these are the 800-dimensional
        full-precision Wiki'17/Wiki'18 embeddings of the same algorithm.
    alpha:
        Eigenvalue weighting exponent.
    factors:
        Optional pre-computed anchor factors (e.g. loaded from the engine's
        artifact store); used whenever the scored pair's vocabulary matches,
        otherwise the factors are re-derived from the anchors and memoised.
    policy:
        Kernel policy used when the measure has to derive anchor factors
        itself (dtype and SVD dispatch); ``None`` = process default.
    rank:
        Optional truncation rank of the anchor factorization (``None`` =
        full-rank thin SVD, the seed behaviour).  Combined with a
        ``svd="randomized"`` policy this turns the anchor SVD -- the dominant
        setup cost of the measure -- into a seeded Halko sketch, and the
        derived factors carry residual estimates for error accounting.
    """

    name = "eis"

    def __init__(
        self,
        anchor_a: Embedding | np.ndarray,
        anchor_b: Embedding | np.ndarray,
        *,
        alpha: float = 3.0,
        factors: AnchorFactors | None = None,
        policy: KernelPolicy | None = None,
        rank: int | None = None,
    ) -> None:
        self.anchor_a = anchor_a
        self.anchor_b = anchor_b
        self.alpha = float(alpha)
        self.factors = factors
        self.policy = policy
        self.rank = None if rank is None else int(rank)
        #: Anchor factors memoised per (vocabulary selection, policy dtype) so
        #: that one SVD of the (large) anchors serves every grid cell sharing
        #: them, without leaking factors across precisions when successive
        #: batches run under different policies.
        self._factor_memo: dict[object, AnchorFactors] = {}

    def _effective_policy(self, policy: KernelPolicy | None) -> KernelPolicy | None:
        """A construction-time policy wins over the per-batch one."""
        return self.policy if self.policy is not None else policy

    def _memo_key(self, selector, policy: KernelPolicy | None) -> tuple:
        # Shape is (selector, dtype): callers (and tests) introspect the memo
        # by unpacking two elements, so the truncation rank rides inside the
        # selector element rather than widening the tuple.
        if self.rank is not None:
            selector = (selector, self.rank)
        return (selector, policy.dtype if policy is not None else "float64")

    def _anchor_matrices(self, n_words: int) -> tuple[np.ndarray, np.ndarray]:
        def resolve(anchor) -> np.ndarray:
            mat = anchor.vectors if isinstance(anchor, Embedding) else np.asarray(anchor)
            if mat.shape[0] < n_words:
                raise ValueError(
                    f"anchor embedding has {mat.shape[0]} rows but {n_words} are required"
                )
            return mat[:n_words]

        return resolve(self.anchor_a), resolve(self.anchor_b)

    def _positional_factors(
        self, n_words: int, policy: KernelPolicy | None = None
    ) -> AnchorFactors:
        """Factors of the anchors sliced to the first ``n_words`` rows."""
        if (
            self.factors is not None
            and self.factors.words is None
            and self.factors.n_words == n_words
        ):
            return self.factors
        policy = self._effective_policy(policy)
        memo = self._factor_memo.get(self._memo_key(n_words, policy))
        if memo is None:
            E, E_t = self._anchor_matrices(n_words)
            memo = anchor_factors(
                E, E_t, alpha=self.alpha, policy=policy, rank=self.rank
            )
            self._factor_memo[self._memo_key(n_words, policy)] = memo
        return memo

    def _word_matched_factors(
        self, words: list[str], policy: KernelPolicy | None = None
    ) -> AnchorFactors:
        """Factors of the anchors row-matched to ``words`` (by vocabulary)."""
        key = tuple(words)
        if self.factors is not None and self.factors.words == key:
            return self.factors
        policy = self._effective_policy(policy)
        memo = self._factor_memo.get(self._memo_key(key, policy))
        if memo is None:
            anchors = []
            for anchor in (self.anchor_a, self.anchor_b):
                if isinstance(anchor, Embedding):
                    ids = [anchor.vocab.word_to_id(w) for w in words]
                    if any(i is None for i in ids):
                        raise ValueError("anchor embedding is missing words from the pair")
                    anchors.append(anchor.vectors[np.asarray(ids, dtype=np.int64)])
                else:
                    mat = np.asarray(anchor)
                    if mat.shape[0] < len(words):
                        raise ValueError(
                            f"anchor embedding has {mat.shape[0]} rows but "
                            f"{len(words)} are required"
                        )
                    anchors.append(mat[: len(words)])
            memo = anchor_factors(
                anchors[0], anchors[1], alpha=self.alpha, words=key,
                policy=policy, rank=self.rank,
            )
            self._factor_memo[self._memo_key(key, policy)] = memo
        return memo

    def compute(self, X: np.ndarray, X_tilde: np.ndarray) -> float:
        return self.compute_cached(X, X_tilde, None)

    def compute_cached(
        self, X: np.ndarray, X_tilde: np.ndarray, cache: DecompositionCache | None = None
    ) -> float:
        X, X_tilde = check_embedding_pair(X, X_tilde)
        factors = self._positional_factors(X.shape[0])
        U = left_singular_vectors(X, cache)
        U_t = left_singular_vectors(X_tilde, cache)
        return _instability_from_factors(U, U_t, factors)

    def compute_aligned(
        self,
        ra: Embedding,
        rb: Embedding,
        *,
        cache: DecompositionCache | None = None,
        policy: KernelPolicy | None = None,
    ) -> MeasureResult:
        """Evaluate on an aligned pair, row-matching the anchors by word.

        Raw-matrix anchors are assumed to be row-aligned with ``ra``.  The
        batch ``policy`` (unless overridden at construction) also governs the
        anchor factorization, so a float32 batch runs float32 end to end.
        """
        X, X_tilde = check_embedding_pair(ra.vectors, rb.vectors)
        factors = self._word_matched_factors(ra.vocab.words, policy)
        U = left_singular_vectors(X, cache)
        U_t = left_singular_vectors(X_tilde, cache)
        value = _instability_from_factors(U, U_t, factors)
        return MeasureResult(measure=self.name, value=float(value), n_words=ra.n_words)

    def compute_embeddings(
        self,
        a: Embedding,
        b: Embedding,
        *,
        top_k: int | None = DEFAULT_TOP_K,
        cache: DecompositionCache | None = None,
    ) -> MeasureResult:
        """Evaluate over the common vocabulary, slicing the anchors to match."""
        ra, rb = aligned_top_k_pair(a, b, top_k=top_k)
        return self.compute_aligned(ra, rb, cache=cache)
