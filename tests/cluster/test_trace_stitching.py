"""Distributed trace stitching over live HTTP.

Pins the observability acceptance criterion: a distributed ``/grid``
request against a live coordinator with polling workers yields ONE
stitched trace — the coordinator's root span, the per-group lease-wait
spans, and the worker-side execution spans (training, measure
evaluation, store replication) shipped back over the completion RPC —
all under the trace id the client sent in ``X-Trace-Id``.
"""

import asyncio
import http.client
import json
import threading
import time
import warnings

import pytest

from repro.cluster import ClusterWorker
from repro.serving import ServiceConfig, StabilityService
from repro.serving.api import StabilityAPIServer, quick_serve_config

TRACE_ID = "feed" * 8


@pytest.fixture(scope="module")
def cluster():
    """A live coordinator with always-on tracing plus two polling workers."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        service = StabilityService(
            quick_serve_config(),
            config=ServiceConfig(lease_ttl=30, trace_sample=1.0, trace_slow_ms=0.0),
        )
    api = StabilityAPIServer(service, port=0)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run_server() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(api.start())
        started.set()
        loop.run_forever()

    server_thread = threading.Thread(target=run_server, daemon=True)
    server_thread.start()
    assert started.wait(timeout=30), "server failed to start"
    url = f"http://127.0.0.1:{api.port}"

    workers = [
        ClusterWorker(url, worker_id=f"worker-{index}", poll_interval=0.05)
        for index in range(2)
    ]
    threads = [threading.Thread(target=worker.run, daemon=True) for worker in workers]
    for thread in threads:
        thread.start()
    try:
        yield api, url, workers
    finally:
        for worker in workers:
            worker.stop()
        for thread in threads:
            thread.join(timeout=30)
        asyncio.run_coroutine_threadsafe(api.stop(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        server_thread.join(timeout=10)
        service.close()


def stream_grid(port: int, headers: dict) -> list[dict]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
    conn.request("GET", "/grid?distributed=true", headers=headers)
    response = conn.getresponse()
    assert response.status == 200
    rows = [json.loads(line) for line in response.read().decode().strip().splitlines()]
    conn.close()
    return rows


def fetch_trace(port: int, trace_id: str) -> list[dict] | None:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    conn.request("GET", f"/trace/{trace_id}")
    response = conn.getresponse()
    body = response.read()
    conn.close()
    if response.status != 200:
        return None
    return [json.loads(line) for line in body.decode().strip().splitlines()]


def get_json(port: int, path: str) -> dict:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    conn.request("GET", path)
    payload = json.loads(conn.getresponse().read())
    conn.close()
    return payload


class TestDistributedStitching:
    def test_grid_produces_one_cluster_wide_trace(self, cluster):
        api, url, workers = cluster

        rows = stream_grid(api.port, {"X-Trace-Id": TRACE_ID})
        assert len(rows) == 4           # quick grid: 2 dims x 2 precisions

        # The root trace finishes when the stream ends; worker spans ride
        # the completion RPCs which land before the final record is pushed,
        # but the last lease's spans may still be milliseconds behind the
        # client's read of the stream tail.  Poll briefly.
        deadline = time.monotonic() + 10.0
        spans = fetch_trace(api.port, TRACE_ID) or []
        while time.monotonic() < deadline:
            names = {row["name"] for row in spans}
            if "worker.group" in names and "store.replicate" in names:
                break
            time.sleep(0.1)
            spans = fetch_trace(api.port, TRACE_ID) or []
        names = {row["name"] for row in spans}

        # One trace covering the whole distributed execution: root request,
        # coordinator-side lease wait, worker-side train/measure/replicate.
        assert "GET /grid" in names
        assert "cluster.lease_wait" in names
        assert "worker.group" in names
        assert "pipeline.train" in names        # cold run: training happened
        assert "pipeline.measures" in names     # measure evaluation
        assert "store.replicate" in names       # artifacts pushed to coordinator
        assert all(row["trace_id"] == TRACE_ID for row in spans)

        # The tree is stitched, not a bag of orphans: every worker.group
        # span hangs off the coordinator root, and pipeline spans hang off
        # a worker.group span.
        by_id = {row["span_id"]: row for row in spans}
        root = next(row for row in spans if row["parent_id"] is None)
        assert root["name"] == "GET /grid"
        group_ids = set()
        for row in spans:
            if row["name"] == "worker.group":
                assert row["parent_id"] == root["span_id"]
                group_ids.add(row["span_id"])
        assert group_ids, "no worker spans were stitched in"
        for row in spans:
            if row["name"].startswith("pipeline."):
                parent = by_id[row["parent_id"]]
                assert parent["span_id"] in group_ids or parent["name"].startswith(
                    ("pipeline.", "worker.")
                )

        # Both sides kept count: workers shipped spans, the sink ingested
        # every one of them.
        assert sum(w.stats()["spans_shipped"] for w in workers) > 0
        counters = get_json(api.port, "/trace/recent")["counters"]
        assert counters["spans_ingested"] > 0
        assert counters["spans_dropped"] == 0

    def test_worker_attrs_identify_the_executors(self, cluster):
        api, url, workers = cluster
        spans = fetch_trace(api.port, TRACE_ID) or []
        executors = {
            row["attrs"]["worker"]
            for row in spans
            if row["name"] == "worker.group"
        }
        assert executors <= {"worker-0", "worker-1"}
        assert executors, "worker.group spans carry no worker attribution"
        waits = [row for row in spans if row["name"] == "cluster.lease_wait"]
        assert all(row["attrs"]["worker"] in executors for row in waits)
