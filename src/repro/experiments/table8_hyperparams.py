"""Table 8 (Appendix D.3): hyperparameter selection for the EIS alpha and k-NN k.

The paper tunes alpha (how strongly high-eigenvalue directions dominate Sigma)
and k (the neighbourhood size) by the average Spearman correlation with
downstream disagreement on validation data, finding alpha = 3 and k = 5.
This experiment reproduces both sweeps on the pipeline's grid.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.correlation import spearman_correlation
from repro.experiments.base import ExperimentResult, resolve_engine, resolve_pipeline
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig
from repro.measures.eigenspace_instability import EigenspaceInstability
from repro.measures.knn import KNNDistance

__all__ = ["run"]


def run(
    pipeline: InstabilityPipeline | PipelineConfig | None = None,
    *,
    alphas: tuple[float, ...] = (0.0, 1.0, 2.0, 3.0, 4.0),
    ks: tuple[int, ...] = (1, 2, 5, 10, 50),
    tasks: tuple[str, ...] | None = None,
    n_workers: int | None = None,
) -> ExperimentResult:
    """Sweep the EIS alpha and k-NN k and report mean Spearman correlations."""
    pipe = resolve_pipeline(pipeline)
    cfg = pipe.config
    records = resolve_engine(pipe, n_workers=n_workers).run(tasks=tasks, with_measures=False)

    # Group the grid by (algorithm, seed) once; each group shares its anchors
    # and its set of compressed pairs.
    combos = sorted({(r.algorithm, r.dim, r.precision, r.seed) for r in records})
    by_setting: dict[tuple, list] = {}
    for r in records:
        by_setting.setdefault((r.algorithm, r.dim, r.precision, r.seed), []).append(r)

    rows = []

    def correlation_for(measure_factory) -> float:
        """Mean Spearman correlation of a measure across (task, algorithm) series."""
        # Compute the measure once per embedding setting.
        measure_values: dict[tuple, float] = {}
        for algorithm, dim, precision, seed in combos:
            emb_a, emb_b = pipe.compressed_pair(algorithm, dim, precision, seed)
            measure = measure_factory(algorithm, seed)
            measure_values[(algorithm, dim, precision, seed)] = measure.compute_embeddings(
                emb_a, emb_b, top_k=cfg.measure_top_k
            ).value
        # Correlate with disagreement per (task, algorithm).
        series: dict[tuple[str, str], tuple[list, list]] = {}
        for key, recs in by_setting.items():
            algorithm = key[0]
            for rec in recs:
                xs, ys = series.setdefault((rec.task, algorithm), ([], []))
                xs.append(measure_values[key])
                ys.append(rec.disagreement)
        rhos = [
            spearman_correlation(xs, ys) for xs, ys in series.values() if len(xs) >= 2
        ]
        return float(np.mean(rhos)) if rhos else 0.0

    for alpha in alphas:
        rho = correlation_for(
            lambda algorithm, seed, a=alpha: EigenspaceInstability(
                *pipe.anchors(algorithm, seed), alpha=a
            )
        )
        rows.append({"hyperparameter": "alpha", "value": alpha, "mean_spearman_rho": rho})
    for k in ks:
        rho = correlation_for(
            lambda algorithm, seed, kk=k: KNNDistance(
                k=kk, num_queries=cfg.knn_num_queries, seed=0
            )
        )
        rows.append({"hyperparameter": "k", "value": k, "mean_spearman_rho": rho})

    alpha_rows = [r for r in rows if r["hyperparameter"] == "alpha"]
    k_rows = [r for r in rows if r["hyperparameter"] == "k"]
    summary = {
        "best_alpha": max(alpha_rows, key=lambda r: r["mean_spearman_rho"])["value"],
        "best_k": max(k_rows, key=lambda r: r["mean_spearman_rho"])["value"],
    }
    return ExperimentResult(name="table-8-measure-hyperparameters", rows=rows, summary=summary)
