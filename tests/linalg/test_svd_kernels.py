"""Property tests of the randomized SVD kernel and the kernel policy."""

import numpy as np
import pytest

from repro.linalg import (
    KernelPolicy,
    compute_svd,
    configure_default_policy,
    default_policy,
    exact_svd,
    randomized_svd,
)


def spectrum_matrix(n: int, d: int, rank: int, *, seed: int = 0, decay: float = 1e-3):
    """A matrix with a decaying spectrum and a clear gap after ``rank``.

    The gap makes the top-``rank`` subspace well separated, so subspace
    (projector) comparisons between exact and randomized factorizations are
    numerically meaningful.
    """
    rng = np.random.default_rng(seed)
    r = min(n, d)
    U, _ = np.linalg.qr(rng.standard_normal((n, r)))
    V, _ = np.linalg.qr(rng.standard_normal((d, r)))
    S = np.concatenate([
        np.geomspace(1.0, 0.2, min(rank, r)),
        np.geomspace(decay, decay / 10, max(r - rank, 0)),
    ])
    return (U * S) @ V.T, S


class TestRandomizedSVD:
    @pytest.mark.parametrize("shape,rank", [
        ((60, 20), 5),
        ((200, 40), 10),
        ((120, 120), 16),
        ((40, 150), 8),
    ])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_exact_within_tolerance(self, shape, rank, seed):
        X, _ = spectrum_matrix(*shape, rank, seed=seed)
        Ue, Se, Vte = exact_svd(X, rank)
        Ur, Sr, Vtr = randomized_svd(X, rank, seed=seed)
        assert Sr.shape == (rank,)
        assert np.allclose(Sr, Se, rtol=1e-6)
        # Compare subspaces via projectors (singular vectors are sign-ambiguous).
        assert np.allclose(Ur @ Ur.T, Ue @ Ue.T, atol=1e-6)
        assert np.allclose(Vtr.T @ Vtr, Vte.T @ Vte, atol=1e-6)

    def test_low_rank_reconstruction(self):
        X, _ = spectrum_matrix(100, 30, 10, seed=3)
        U, S, Vt = randomized_svd(X, 10, seed=0)
        # Relative reconstruction error is bounded by the discarded spectrum.
        _, S_full, _ = exact_svd(X)
        bound = S_full[10] if S_full.size > 10 else 0.0
        err = np.linalg.norm(X - (U * S) @ Vt, 2)
        assert err <= bound * 1.5 + 1e-9

    def test_deterministic_given_seed(self):
        X, _ = spectrum_matrix(80, 25, 8, seed=5)
        first = randomized_svd(X, 8, seed=42)
        second = randomized_svd(X, 8, seed=42)
        for a, b in zip(first, second):
            assert np.array_equal(a, b)  # bitwise

    def test_different_seeds_differ(self):
        # Same factorization values, but different range-finder samples: the
        # raw U matrices generally differ in the trailing digits.
        X = np.random.default_rng(0).standard_normal((60, 40))
        U0, _, _ = randomized_svd(X, 30, n_power_iter=0, n_oversamples=0, seed=0)
        U1, _, _ = randomized_svd(X, 30, n_power_iter=0, n_oversamples=0, seed=1)
        assert not np.array_equal(U0, U1)

    def test_rank_clamped_to_short_side(self):
        X, _ = spectrum_matrix(30, 10, 5, seed=0)
        U, S, Vt = randomized_svd(X, 50, seed=0)
        assert U.shape == (30, 10) and S.shape == (10,) and Vt.shape == (10, 10)

    def test_invalid_rank(self):
        X = np.ones((5, 5))
        with pytest.raises(ValueError):
            randomized_svd(X, 0)

    def test_dtype_preserved(self):
        X, _ = spectrum_matrix(50, 20, 5, seed=1)
        U, S, Vt = randomized_svd(X.astype(np.float32), 5, seed=0)
        assert U.dtype == S.dtype == Vt.dtype == np.float32

    def test_sparse_input(self):
        import scipy.sparse as sp

        X, _ = spectrum_matrix(80, 40, 8, seed=2)
        X[np.abs(X) < 1e-3] = 0.0
        U, S, Vt = randomized_svd(sp.csr_matrix(X), 8, seed=0)
        _, Se, _ = exact_svd(X, 8)
        assert np.allclose(S, Se, rtol=1e-5)


class TestKernelPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            KernelPolicy(svd="fast")
        with pytest.raises(ValueError):
            KernelPolicy(dtype="float16")

    def test_auto_resolution(self):
        policy = KernelPolicy(svd="auto", auto_min_side=512, auto_max_rank_fraction=0.25)
        # Full-rank thin decompositions stay exact.
        assert policy.resolve_method((10_000, 64), None) == "exact"
        # Small matrices stay exact even with a truncated rank.
        assert policy.resolve_method((300, 300), 10) == "exact"
        # Large matrix, small rank: randomized.
        assert policy.resolve_method((5000, 1000), 50) == "randomized"
        # Large matrix but nearly full rank: exact.
        assert policy.resolve_method((5000, 1000), 900) == "exact"

    def test_explicit_methods_bypass_auto(self):
        assert KernelPolicy(svd="exact").resolve_method((5000, 1000), 10) == "exact"
        # Forced randomized applies to any truncated rank, however small the matrix.
        assert KernelPolicy(svd="randomized").resolve_method((10, 10), 3) == "randomized"

    def test_full_rank_always_exact(self):
        # A randomized factorization without a truncated rank is strictly
        # slower and less accurate than LAPACK, so rank=None resolves to
        # exact under every policy.
        for svd in ("exact", "randomized", "auto"):
            assert KernelPolicy(svd=svd).resolve_method((5000, 64), None) == "exact"

    def test_cast(self):
        policy = KernelPolicy(dtype="float32")
        X = np.ones((3, 3))
        assert policy.cast(X).dtype == np.float32
        Y = np.ones((3, 3), dtype=np.float32)
        assert policy.cast(Y) is Y

    def test_with_overrides_drops_none(self):
        policy = KernelPolicy()
        assert policy.with_overrides(svd=None, dtype=None) is policy
        assert policy.with_overrides(svd="randomized").svd == "randomized"

    def test_default_is_exact_and_float64(self):
        # The bit-identical-to-seed contract: faster kernels are opt-in only.
        policy = KernelPolicy()
        assert policy.svd == "exact" and policy.dtype == "float64"
        assert policy.resolve_method((5000, 5000), 50) == "exact"

    def test_key_fields_track_value_affecting_knobs(self):
        assert KernelPolicy(svd="exact", n_power_iter=7).key_fields() == {"svd": "exact"}
        randomized = KernelPolicy(svd="randomized").key_fields()
        assert {"svd", "n_oversamples", "n_power_iter", "seed"} <= set(randomized)
        assert "auto_min_side" not in randomized
        auto = KernelPolicy(svd="auto").key_fields()
        assert {"auto_min_side", "auto_max_rank_fraction"} <= set(auto)
        # Changing a knob that changes randomized results changes the key fields.
        assert KernelPolicy(svd="randomized", n_power_iter=0).key_fields() != randomized

    def test_default_policy_configuration(self):
        try:
            configured = configure_default_policy(svd="randomized", dtype="float32")
            assert default_policy() is configured
            assert default_policy().svd == "randomized"
        finally:
            configure_default_policy()  # reset
        assert default_policy() == KernelPolicy()


class TestComputeSVD:
    def test_policy_dispatch_exact_matches_numpy(self):
        X = np.random.default_rng(0).standard_normal((40, 12))
        U, S, Vt = compute_svd(X, policy=KernelPolicy(svd="exact"))
        Ue, Se, Vte = np.linalg.svd(X, full_matrices=False)
        assert np.array_equal(S, Se)

    def test_truncation(self):
        X = np.random.default_rng(0).standard_normal((40, 12))
        U, S, Vt = compute_svd(X, rank=4)
        assert U.shape == (40, 4) and S.shape == (4,) and Vt.shape == (4, 12)

    def test_randomized_full_requested_rank_is_close_to_exact(self):
        X, _ = spectrum_matrix(60, 12, 12, seed=0, decay=1e-2)
        U, S, Vt = compute_svd(X, rank=12, policy=KernelPolicy(svd="randomized"))
        _, Se, _ = exact_svd(X)
        assert np.allclose(S, Se, rtol=1e-5)

    def test_forced_randomized_without_rank_stays_exact(self):
        X = np.random.default_rng(0).standard_normal((40, 12))
        U, S, Vt = compute_svd(X, policy=KernelPolicy(svd="randomized"))
        _, Se, _ = np.linalg.svd(X, full_matrices=False)
        assert np.array_equal(S, Se)

    def test_seed_override(self):
        X = np.random.default_rng(0).standard_normal((600, 520))
        policy = KernelPolicy(svd="randomized", n_oversamples=0, n_power_iter=0)
        a = compute_svd(X, rank=5, policy=policy, seed=1)
        b = compute_svd(X, rank=5, policy=policy, seed=2)
        assert not np.array_equal(a[0], b[0])
