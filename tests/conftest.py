"""Shared test fixtures: tiny corpora, vocabularies, embeddings, datasets.

Expensive artifacts are session-scoped so the whole suite stays fast; tests
that mutate state build their own copies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.synthetic import SyntheticCorpusConfig, SyntheticCorpusGenerator
from repro.embeddings.alignment import align_pair
from repro.embeddings.svd import PPMISVDModel
from repro.tasks.lexicons import build_task_lexicons
from repro.tasks.ner import NERTaskConfig, generate_ner_dataset
from repro.tasks.sentiment import generate_sentiment_dataset


TINY_CORPUS_CONFIG = SyntheticCorpusConfig(
    vocab_size=200,
    n_topics=6,
    n_documents=120,
    doc_length_mean=50,
    seed=7,
)


@pytest.fixture(scope="session")
def generator() -> SyntheticCorpusGenerator:
    return SyntheticCorpusGenerator(TINY_CORPUS_CONFIG)


@pytest.fixture(scope="session")
def corpus_pair(generator):
    return generator.generate_pair(seed=7)


@pytest.fixture(scope="session")
def corpus(corpus_pair):
    return corpus_pair.base


@pytest.fixture(scope="session")
def vocab(corpus_pair):
    return corpus_pair.shared_vocabulary(min_count=2)


@pytest.fixture(scope="session")
def lexicons(generator, vocab):
    return build_task_lexicons(generator, vocab)


@pytest.fixture(scope="session")
def embedding_pair(corpus_pair, vocab):
    """A small, fast (SVD) embedding pair over the shared vocabulary, aligned."""
    emb_a = PPMISVDModel(dim=12, seed=0).fit(corpus_pair.base, vocab=vocab)
    emb_b = PPMISVDModel(dim=12, seed=0).fit(corpus_pair.drifted, vocab=vocab)
    return emb_a, align_pair(emb_a, emb_b)


@pytest.fixture(scope="session")
def embedding(embedding_pair):
    return embedding_pair[0]


@pytest.fixture(scope="session")
def sentiment_dataset(lexicons):
    return generate_sentiment_dataset("sst2", lexicons, seed=3)


@pytest.fixture(scope="session")
def ner_dataset(lexicons):
    config = NERTaskConfig(n_sentences=60, sentence_length=10, entity_density=0.35)
    return generate_ner_dataset(config, lexicons, seed=3)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
