"""Figure 11: contextual (BERT-style) embedding instability vs output dimension/precision."""

from repro.experiments import fig11_contextual


def test_fig11_contextual(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: fig11_contextual.run(pipeline, output_dims=(16, 32), precisions=(1, 32)),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_table())
    print("summary:", result.summary)
    assert len(result.rows) == 4
    assert all(0.0 <= r["disagreement_pct"] <= 100.0 for r in result.rows)
