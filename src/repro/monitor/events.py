"""Bounded, sequence-numbered event log backing ``GET /monitor/events``.

The monitor narrates its lifecycle -- snapshot cut, retrain started,
measures ready, drift alert -- as JSON-able events.  The log is the bridge
between the monitor's worker threads (which emit) and the HTTP layer (which
replays and, with ``follow=true``, tails): every event carries a monotonic
``seq`` so a consumer can resume from the last one it saw, and the buffer is
bounded so an unwatched monitor cannot grow without limit (consumers that
fall behind a full buffer window simply miss the evicted events, like any
ring buffer).
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["MonitorEventLog"]


class MonitorEventLog:
    """Thread-safe ring buffer of monitor events with blocking tail reads."""

    def __init__(self, max_events: int = 1024) -> None:
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.max_events = int(max_events)
        self._events: deque[dict] = deque(maxlen=self.max_events)
        self._cond = threading.Condition()
        self._next_seq = 1
        #: Total events ever emitted (not bounded by the buffer).
        self.emitted = 0

    def emit(self, kind: str, **payload) -> dict:
        """Append one event; returns it (with ``seq`` and ``ts`` stamped)."""
        with self._cond:
            event = {"seq": self._next_seq, "ts": round(time.time(), 3),
                     "kind": str(kind), **payload}
            self._next_seq += 1
            self._events.append(event)
            self.emitted += 1
            self._cond.notify_all()
        return event

    def events(self, since: int = 0) -> list[dict]:
        """Snapshot of buffered events with ``seq > since`` (oldest first)."""
        with self._cond:
            return [dict(e) for e in self._events if e["seq"] > since]

    def wait(self, since: int = 0, timeout: float | None = None) -> list[dict]:
        """Block until an event with ``seq > since`` exists (or timeout).

        Returns the matching events -- empty on timeout -- so a streaming
        consumer loops ``events = log.wait(last_seq, 1.0)`` and stays
        responsive to its own cancellation between waits.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                fresh = [dict(e) for e in self._events if e["seq"] > since]
                if fresh:
                    return fresh
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return []
                self._cond.wait(remaining)

    @property
    def last_seq(self) -> int:
        with self._cond:
            return self._next_seq - 1
