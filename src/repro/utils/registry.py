"""A tiny name->factory registry.

Used to register embedding algorithms, distance measures, downstream models,
and experiments so that the benchmark harness and the examples can look them
up by the names the paper uses ("cbow", "glove", "mc", "eis", "knn", ...).
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

T = TypeVar("T")

__all__ = ["Registry"]


class Registry(Generic[T]):
    """Case-insensitive mapping from names to registered objects."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, T] = {}

    def register(self, name: str, obj: T | None = None) -> Callable[[T], T] | T:
        """Register ``obj`` under ``name``; usable as a decorator.

        ``registry.register("glove")`` returns a decorator, while
        ``registry.register("glove", factory)`` registers immediately.
        """
        key = name.lower()

        def _do_register(target: T) -> T:
            if key in self._entries:
                raise KeyError(f"{self.kind} '{name}' is already registered")
            self._entries[key] = target
            return target

        if obj is None:
            return _do_register
        return _do_register(obj)

    def get(self, name: str) -> T:
        key = name.lower()
        if key not in self._entries:
            known = ", ".join(sorted(self._entries)) or "<none>"
            raise KeyError(f"unknown {self.kind} '{name}'; known: {known}")
        return self._entries[key]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> list[str]:
        return sorted(self._entries)
