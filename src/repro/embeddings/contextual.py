"""Contextual word embeddings: a small BERT-style feature extractor.

Section 6.2 of the paper pre-trains shallow (3-layer) BERT models on
sub-sampled Wiki'17 and Wiki'18 dumps and uses them as *frozen* feature
extractors for linear sentiment classifiers, studying how the transformer
output dimension and output precision affect downstream instability.

Offline substitution: we cannot pre-train even a small BERT end-to-end here,
so :class:`MiniBertEncoder` factors the model as

* a **corpus-trained token embedding** (CBOW on the given corpus) -- this is
  the component that differs between the Corpus'17 and Corpus'18 snapshots and
  therefore the source of the instability being measured, exactly as the
  change of pre-training corpus is in the paper; and
* a **deterministic transformer encoder** (multi-head self-attention + FFN
  blocks) whose weights are derived from the architecture seed and are shared
  by both members of a pair -- playing the role of the shared model
  architecture/initialisation.

The output is a context-dependent feature per token with a configurable
output dimension, which downstream models consume exactly like the paper's
frozen BERT features.  DESIGN.md records this substitution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.synthetic import Corpus
from repro.corpus.vocabulary import Vocabulary
from repro.embeddings.base import Embedding
from repro.embeddings.word2vec import CBOWModel
from repro.utils.rng import check_random_state

__all__ = ["MiniBertConfig", "MiniBertEncoder"]


@dataclass(frozen=True)
class MiniBertConfig:
    """Architecture of the contextual encoder.

    Attributes
    ----------
    hidden_dim:
        Width of the transformer layers.
    output_dim:
        Width of the final projected token features (the axis swept in
        Figure 11a).
    n_layers:
        Number of transformer blocks (the paper uses 3).
    n_heads:
        Attention heads; must divide ``hidden_dim``.
    ffn_dim:
        Width of the position-wise feed-forward layer.
    max_len:
        Maximum sequence length for positional encodings.
    token_dim:
        Dimension of the corpus-trained token embedding.
    architecture_seed:
        Seed for the shared transformer weights (identical across the corpus
        pair, like a shared initialisation).
    """

    hidden_dim: int = 64
    output_dim: int = 64
    n_layers: int = 3
    n_heads: int = 4
    ffn_dim: int = 128
    max_len: int = 256
    token_dim: int = 32
    architecture_seed: int = 1234

    def __post_init__(self) -> None:
        if self.hidden_dim % self.n_heads != 0:
            raise ValueError("hidden_dim must be divisible by n_heads")
        for name in ("hidden_dim", "output_dim", "n_layers", "n_heads", "ffn_dim", "max_len",
                     "token_dim"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


def _layer_norm(x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps)


def _gelu(x: np.ndarray) -> np.ndarray:
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


class MiniBertEncoder:
    """Frozen contextual feature extractor over a corpus-trained token embedding.

    Parameters
    ----------
    config:
        Architecture configuration.
    cbow_epochs, cbow_window:
        Training budget of the internal CBOW token-embedding pre-training.
    seed:
        Seed of the *corpus-dependent* part (token embedding training); the
        transformer weights use ``config.architecture_seed`` instead so that a
        Corpus'17/Corpus'18 pair shares them.
    """

    def __init__(
        self,
        config: MiniBertConfig | None = None,
        *,
        cbow_epochs: int = 5,
        cbow_window: int = 4,
        seed: int = 0,
    ) -> None:
        self.config = config or MiniBertConfig()
        self.cbow_epochs = int(cbow_epochs)
        self.cbow_window = int(cbow_window)
        self.seed = int(seed)
        self.token_embedding: Embedding | None = None
        self._weights: dict[str, np.ndarray] | None = None

    # -- pre-training --------------------------------------------------------

    def fit(self, corpus: Corpus, *, vocab: Vocabulary | None = None) -> "MiniBertEncoder":
        """'Pre-train' the encoder on ``corpus``.

        Trains the token embedding with CBOW on the corpus and materialises
        the (corpus-independent) transformer weights.
        """
        cbow = CBOWModel(
            dim=self.config.token_dim,
            window_size=self.cbow_window,
            epochs=self.cbow_epochs,
            seed=self.seed,
        )
        self.token_embedding = cbow.fit(corpus, vocab=vocab)
        self._weights = self._build_transformer_weights(len(self.token_embedding.vocab))
        return self

    def _build_transformer_weights(self, vocab_size: int) -> dict[str, np.ndarray]:
        cfg = self.config
        rng = check_random_state(cfg.architecture_seed)
        weights: dict[str, np.ndarray] = {}

        def glorot(shape: tuple[int, int]) -> np.ndarray:
            scale = np.sqrt(6.0 / sum(shape))
            return rng.uniform(-scale, scale, size=shape)

        weights["proj_in"] = glorot((cfg.token_dim, cfg.hidden_dim))
        # Sinusoidal positional encodings (deterministic, no seed needed).
        position = np.arange(cfg.max_len)[:, None]
        div = np.exp(np.arange(0, cfg.hidden_dim, 2) * (-np.log(10000.0) / cfg.hidden_dim))
        pos_enc = np.zeros((cfg.max_len, cfg.hidden_dim))
        pos_enc[:, 0::2] = np.sin(position * div)
        pos_enc[:, 1::2] = np.cos(position * div[: pos_enc[:, 1::2].shape[1]])
        weights["positional"] = pos_enc

        for layer in range(cfg.n_layers):
            for name in ("wq", "wk", "wv", "wo"):
                weights[f"layer{layer}.{name}"] = glorot((cfg.hidden_dim, cfg.hidden_dim))
            weights[f"layer{layer}.ffn1"] = glorot((cfg.hidden_dim, cfg.ffn_dim))
            weights[f"layer{layer}.ffn2"] = glorot((cfg.ffn_dim, cfg.hidden_dim))
        weights["proj_out"] = glorot((cfg.hidden_dim, cfg.output_dim))
        del vocab_size  # vocabulary size does not affect the shared weights
        return weights

    # -- encoding ------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self.token_embedding is not None and self._weights is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("MiniBertEncoder must be fit() before encoding")

    def encode_tokens(self, token_ids: np.ndarray) -> np.ndarray:
        """Contextual features for a single token-id sequence.

        Parameters
        ----------
        token_ids:
            1-D array of ids into the token-embedding vocabulary (negative ids
            are treated as unknown and embedded as zeros).

        Returns
        -------
        ndarray of shape ``(len(token_ids), output_dim)``.
        """
        self._require_fitted()
        cfg = self.config
        W = self._weights
        ids = np.asarray(token_ids, dtype=np.int64)[: cfg.max_len]
        if ids.size == 0:
            return np.zeros((0, cfg.output_dim))

        emb_table = self.token_embedding.vectors
        tokens = np.where(ids[:, None] >= 0, emb_table[np.clip(ids, 0, None)], 0.0)
        x = tokens @ W["proj_in"] + W["positional"][: len(ids)]
        x = _layer_norm(x)

        head_dim = cfg.hidden_dim // cfg.n_heads
        for layer in range(cfg.n_layers):
            q = x @ W[f"layer{layer}.wq"]
            k = x @ W[f"layer{layer}.wk"]
            v = x @ W[f"layer{layer}.wv"]
            # Split heads: (L, H, dh)
            L = x.shape[0]
            q = q.reshape(L, cfg.n_heads, head_dim).transpose(1, 0, 2)
            k = k.reshape(L, cfg.n_heads, head_dim).transpose(1, 0, 2)
            v = v.reshape(L, cfg.n_heads, head_dim).transpose(1, 0, 2)
            scores = q @ k.transpose(0, 2, 1) / np.sqrt(head_dim)
            attn = _softmax(scores, axis=-1)
            context = (attn @ v).transpose(1, 0, 2).reshape(L, cfg.hidden_dim)
            x = _layer_norm(x + context @ W[f"layer{layer}.wo"])
            ffn = _gelu(x @ W[f"layer{layer}.ffn1"]) @ W[f"layer{layer}.ffn2"]
            x = _layer_norm(x + ffn)

        return x @ W["proj_out"]

    def encode_words(self, words: list[str]) -> np.ndarray:
        """Contextual features for a list of word strings."""
        self._require_fitted()
        vocab = self.token_embedding.vocab
        ids = np.asarray([vocab.word_to_id(w, -1) for w in words], dtype=np.int64)
        return self.encode_tokens(ids)

    def encode_document(self, token_ids: np.ndarray) -> np.ndarray:
        """Mean-pooled document feature (what the linear classifiers consume)."""
        features = self.encode_tokens(token_ids)
        if features.shape[0] == 0:
            return np.zeros(self.config.output_dim)
        return features.mean(axis=0)

    def encode_documents(self, documents: list[np.ndarray]) -> np.ndarray:
        """Mean-pooled features for a list of documents, stacked into a matrix."""
        return np.vstack([self.encode_document(doc) for doc in documents])
