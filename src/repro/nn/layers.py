"""Neural-network layers (Module, Linear, Embedding, Dropout, activations)."""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.utils.rng import check_random_state

__all__ = ["Module", "Linear", "Embedding", "Dropout", "ReLU", "Tanh", "Sequential"]


class Module:
    """Base class for layers and models: parameter tracking + train/eval mode."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Tensor]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -- registration ----------------------------------------------------------

    def __setattr__(self, name, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, tensor: Tensor) -> Tensor:
        self._parameters[name] = tensor
        object.__setattr__(self, name, tensor)
        return tensor

    # -- traversal ---------------------------------------------------------------

    def parameters(self) -> Iterator[Tensor]:
        """All trainable parameters of this module and its children."""
        seen: set[int] = set()
        for p in self._parameters.values():
            if id(p) not in seen:
                seen.add(id(p))
                yield p
        for child in self._modules.values():
            for p in child.parameters():
                if id(p) not in seen:
                    seen.add(id(p))
                    yield p

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, p in self._parameters.items():
            yield f"{prefix}{name}", p
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- modes ---------------------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- state ------------------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)}")
        for name, p in params.items():
            if p.data.shape != np.asarray(state[name]).shape:
                raise ValueError(f"shape mismatch for {name}")
            p.data = np.asarray(state[name], dtype=np.float64).copy()

    # -- call -------------------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


def _init_weight(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot-uniform initialisation."""
    scale = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-scale, scale, size=(fan_in, fan_out))


class Linear(Module):
    """Affine layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, *, bias: bool = True, seed: int = 0):
        super().__init__()
        rng = check_random_state(seed)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(_init_weight(rng, in_features, out_features), requires_grad=True)
        self.bias = (
            Tensor(np.zeros(out_features), requires_grad=True) if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Embedding lookup table, optionally frozen (the paper fixes embeddings).

    Parameters
    ----------
    weight:
        Initial ``(num_embeddings, dim)`` matrix (e.g. pre-trained vectors).
    trainable:
        Whether the table receives gradients (the paper's default pipeline
        freezes it; Appendix E.4 fine-tunes it).
    """

    def __init__(self, weight: np.ndarray, *, trainable: bool = False):
        super().__init__()
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 2:
            raise ValueError("embedding weight must be 2-D")
        self.num_embeddings, self.dim = weight.shape
        self.trainable = bool(trainable)
        if self.trainable:
            self.weight = Tensor(weight.copy(), requires_grad=True)
        else:
            self.weight = Tensor(weight.copy())

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        return self.weight[indices]

    def mean_of(self, indices: np.ndarray) -> Tensor:
        """Mean embedding of a bag of word ids (empty bags map to zeros)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return Tensor(np.zeros(self.dim))
        return self.forward(indices).mean(axis=0)


class Dropout(Module):
    """Inverted dropout layer."""

    def __init__(self, p: float = 0.5, *, seed: int = 0):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = float(p)
        self.rng = check_random_state(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self.rng)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.children_list = list(modules)
        for idx, module in enumerate(modules):
            self._modules[str(idx)] = module

    def forward(self, x):
        for module in self.children_list:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self.children_list)

    def __getitem__(self, idx: int) -> Module:
        return self.children_list[idx]
