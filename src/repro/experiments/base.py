"""Shared experiment scaffolding: the result container and quick configs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import format_table, rows_to_csv
from repro.corpus.synthetic import SyntheticCorpusConfig
from repro.engine.scheduler import GridEngine
from repro.engine.store import ArtifactStore
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig

__all__ = [
    "ExperimentResult",
    "quick_pipeline_config",
    "resolve_engine",
    "resolve_pipeline",
]


@dataclass
class ExperimentResult:
    """Result of one experiment: named rows mirroring a paper table/figure.

    Attributes
    ----------
    name:
        Experiment identifier ("figure-1-dimension", "table-1", ...).
    rows:
        List of dictionaries; one per row/series point of the paper artifact.
    summary:
        Free-form key findings (e.g. fitted slopes, best measure) recorded for
        EXPERIMENTS.md.
    """

    name: str
    rows: list[dict]
    summary: dict = field(default_factory=dict)

    def to_table(self, *, headers: list[str] | None = None) -> str:
        """Plain-text rendering of the rows (what the benchmarks print)."""
        return format_table(self.rows, headers=headers, title=self.name)

    def to_csv(self, path) -> None:
        rows_to_csv(self.rows, path)

    def __len__(self) -> int:
        return len(self.rows)


def quick_pipeline_config(
    *,
    algorithms: tuple[str, ...] = ("cbow", "mc"),
    dimensions: tuple[int, ...] = (8, 16, 32),
    precisions: tuple[int, ...] = (1, 4, 32),
    seeds: tuple[int, ...] = (0,),
    tasks: tuple[str, ...] = ("sst2", "conll"),
    **overrides,
) -> PipelineConfig:
    """A scaled-down pipeline configuration used by benchmarks and examples.

    The full :class:`PipelineConfig` defaults reproduce the complete grid the
    way the paper sweeps it (three algorithms, four dimensions, five
    precisions, three seeds); this helper trims the axes so each benchmark
    finishes in seconds while still exercising the full code path.
    """
    defaults = dict(
        corpus=SyntheticCorpusConfig(
            vocab_size=300, n_documents=250, doc_length_mean=70, seed=0
        ),
        algorithms=algorithms,
        dimensions=dimensions,
        precisions=precisions,
        seeds=seeds,
        tasks=tasks,
        embedding_epochs=8,
        downstream_epochs=12,
        ner_epochs=10,
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


def resolve_pipeline(
    pipeline: InstabilityPipeline | PipelineConfig | None,
    *,
    store: ArtifactStore | None = None,
) -> InstabilityPipeline:
    """Accept a pipeline, a config, or ``None`` (quick defaults) and return a pipeline."""
    if isinstance(pipeline, InstabilityPipeline):
        return pipeline
    if isinstance(pipeline, PipelineConfig):
        return InstabilityPipeline(pipeline, store=store)
    return InstabilityPipeline(quick_pipeline_config(), store=store)


def resolve_engine(
    pipeline: GridEngine | InstabilityPipeline | PipelineConfig | None,
    *,
    store: ArtifactStore | None = None,
    n_workers: int | None = None,
) -> GridEngine:
    """Resolve any pipeline-ish input to a grid-execution engine.

    Every experiment entrypoint routes its grid sweeps through the engine so
    artifact caching, ancestry-aware scheduling and process fan-out apply
    uniformly.  ``n_workers=None`` inherits the worker count of a passed
    :class:`GridEngine` (and otherwise means serial); an explicit ``0``
    always forces serial execution.
    """
    if isinstance(pipeline, GridEngine):
        workers = pipeline.n_workers if n_workers is None else n_workers
        return GridEngine(pipeline.pipeline, n_workers=workers)
    return GridEngine(resolve_pipeline(pipeline, store=store), n_workers=n_workers or 0)
