"""1-D convolution over token sequences (for the CNN sentence classifier).

Appendix E.2 of the paper checks that the stability-memory tradeoff survives
with a more complex downstream model: a Kim (2014)-style CNN with kernel
widths {3, 4, 5}, 100 output channels, ReLU, and max-over-time pooling.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Module, _init_weight
from repro.nn.tensor import Tensor
from repro.utils.rng import check_random_state

__all__ = ["Conv1d", "max_over_time"]


class Conv1d(Module):
    """Valid-mode 1-D convolution over a ``(seq_len, dim)`` input.

    Implemented as an unfold ("im2col") followed by a matmul so the autograd
    engine only has to differentiate indexing and matrix multiplication.
    """

    def __init__(self, in_dim: int, out_channels: int, kernel_width: int, *, seed: int = 0):
        super().__init__()
        if kernel_width < 1:
            raise ValueError("kernel_width must be >= 1")
        rng = check_random_state(seed)
        self.in_dim = int(in_dim)
        self.out_channels = int(out_channels)
        self.kernel_width = int(kernel_width)
        self.weight = Tensor(
            _init_weight(rng, kernel_width * in_dim, out_channels), requires_grad=True
        )
        self.bias = Tensor(np.zeros(out_channels), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        """Convolve ``x`` of shape ``(seq_len, in_dim)`` -> ``(windows, out_channels)``.

        Sequences shorter than the kernel are implicitly zero-padded on the
        right so at least one window exists.
        """
        seq_len = x.shape[0]
        k = self.kernel_width
        if seq_len < k:
            pad = Tensor(np.zeros((k - seq_len, self.in_dim)))
            x = Tensor.concatenate([x, pad], axis=0)
            seq_len = k
        n_windows = seq_len - k + 1
        # Unfold into (n_windows, k * in_dim) with an index-based gather so the
        # gradient flows back through Tensor.__getitem__.
        window_rows = np.arange(n_windows)[:, None] + np.arange(k)[None, :]
        unfolded = x[window_rows.ravel()].reshape(n_windows, k * self.in_dim)
        return unfolded @ self.weight + self.bias


def max_over_time(features: Tensor) -> Tensor:
    """Max-pool a ``(windows, channels)`` feature map over the window axis."""
    return features.max(axis=0)
