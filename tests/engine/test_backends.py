"""Unit tests of the storage backends, codecs, and the store's tier stack."""

import threading

import numpy as np
import pytest

from repro.engine.backends import (
    AsyncReplicator,
    DiskBackend,
    MemoryBackend,
    RemoteBackend,
    ShardedBackend,
    StoreBackend,
    backend_from_spec,
)
from repro.engine.codecs import (
    ARRAYS_CODEC,
    EMBEDDING_PAIR_CODEC,
    JSON_CODEC,
    codec_for_value,
)
from repro.engine.store import ArtifactStore


class RecordingBackend(StoreBackend):
    """Dict-backed backend that logs every operation (order assertions)."""

    persistent = False

    def __init__(self, name: str, log: list) -> None:
        super().__init__()
        self.name = name
        self.log = log
        self.data: dict[tuple[str, str], bytes] = {}

    def _get(self, kind, name):
        self.log.append((self.name, "get", name))
        return self.data.get((kind, name))

    def _put(self, kind, name, payload):
        self.log.append((self.name, "put", name))
        self.data[(kind, name)] = payload

    def _contains(self, kind, name):
        return (kind, name) in self.data

    def _delete(self, kind, name):
        self.data.pop((kind, name), None)


class TestCodecs:
    def test_json_round_trip(self):
        value = {"acc": 0.1 + 0.2, "n": 3}
        assert JSON_CODEC.decode(JSON_CODEC.encode(value)) == value

    def test_arrays_round_trip(self):
        arrays = {"P": np.arange(12.0).reshape(3, 4), "S": np.ones(4)}
        decoded = ARRAYS_CODEC.decode(ARRAYS_CODEC.encode(arrays))
        np.testing.assert_array_equal(decoded["P"], arrays["P"])
        np.testing.assert_array_equal(decoded["S"], arrays["S"])

    def test_embedding_pair_round_trip(self, embedding_pair):
        emb_a, emb_b = embedding_pair
        dec_a, dec_b = EMBEDDING_PAIR_CODEC.decode(
            EMBEDDING_PAIR_CODEC.encode((emb_a, emb_b))
        )
        assert dec_a.vocab.words == emb_a.vocab.words
        np.testing.assert_array_equal(dec_a.vectors, emb_a.vectors)
        np.testing.assert_array_equal(dec_b.vectors, emb_b.vectors)
        assert dec_b.metadata == emb_b.metadata

    def test_codec_for_value_dispatch(self, embedding_pair):
        assert codec_for_value({"x": 1}) is JSON_CODEC
        assert codec_for_value({"x": np.zeros(2)}) is ARRAYS_CODEC
        assert codec_for_value(embedding_pair) is EMBEDDING_PAIR_CODEC
        assert codec_for_value([1, 2, 3]) is JSON_CODEC


class TestMemoryBackend:
    def test_round_trip_and_counters(self):
        backend = MemoryBackend()
        assert backend.get("k", "a.json") is None
        backend.put("k", "a.json", b"payload")
        assert backend.get("k", "a.json") == b"payload"
        assert backend.contains("k", "a.json")
        backend.delete("k", "a.json")
        assert not backend.contains("k", "a.json")
        assert (backend.stats.hits, backend.stats.misses) == (1, 1)
        assert (backend.stats.puts, backend.stats.deletes) == (1, 1)

    def test_lru_bound_evicts_oldest(self):
        backend = MemoryBackend(max_entries=2)
        backend.put("k", "a", b"1")
        backend.put("k", "b", b"2")
        backend.get("k", "a")              # refresh a; b becomes the LRU entry
        backend.put("k", "c", b"3")
        assert backend.contains("k", "a") and backend.contains("k", "c")
        assert not backend.contains("k", "b")
        assert backend.stats.evictions == 1


class TestDiskBackend:
    def test_layout_matches_store_convention(self, tmp_path):
        backend = DiskBackend(tmp_path)
        backend.put("measures", "deadbeef.json", b"{}")
        assert (tmp_path / "measures" / "deadbeef.json").read_bytes() == b"{}"
        # Durable atomic writes leave no temp files behind.
        assert not list(tmp_path.rglob("*.tmp"))

    def test_get_missing_is_none(self, tmp_path):
        assert DiskBackend(tmp_path).get("measures", "nope.json") is None

    def test_delete(self, tmp_path):
        backend = DiskBackend(tmp_path)
        backend.put("k", "a.json", b"x")
        backend.delete("k", "a.json")
        assert not backend.contains("k", "a.json")
        backend.delete("k", "a.json")      # idempotent


class TestShardedBackend:
    def test_same_key_same_shard_across_instances(self, tmp_path):
        # Two independently-constructed backends (two processes, two hosts)
        # must route every key identically: the mapping is content-hash-based,
        # never Python-hash-based.
        first = ShardedBackend.local(tmp_path, 4)
        second = ShardedBackend.local(tmp_path, 4)
        for index in range(64):
            name = f"key-{index}.json"
            assert first.shard_index("k", name) == second.shard_index("k", name)

    def test_keys_spread_over_all_shards(self, tmp_path):
        backend = ShardedBackend.local(tmp_path, 4)
        owners = {backend.shard_index("k", f"key-{i}.json") for i in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_round_trip_lands_on_exactly_one_shard(self, tmp_path):
        backend = ShardedBackend.local(tmp_path, 3)
        backend.put("measures", "abc.json", b"{}")
        assert backend.get("measures", "abc.json") == b"{}"
        holders = [
            shard for shard in backend.shards if shard.contains("measures", "abc.json")
        ]
        assert len(holders) == 1
        assert holders[0] is backend.shard_for("measures", "abc.json")

    def test_consistent_hashing_is_mostly_stable_under_growth(self, tmp_path):
        # Adding a shard must only move ~1/(N+1) of the keys -- the property
        # that makes rebalancing a sharded store cheap.
        three = ShardedBackend.local(tmp_path / "a", 3)
        four = ShardedBackend.local(tmp_path / "b", 4)
        names = [f"key-{i}.json" for i in range(400)]
        moved = sum(
            three.shard_index("k", name) != four.shard_index("k", name)
            for name in names
        )
        assert moved < len(names) // 2

    def test_empty_shard_list_rejected(self):
        with pytest.raises(ValueError):
            ShardedBackend([])


class TestRemoteBackendOffline:
    def test_unreachable_peer_degrades_to_miss(self):
        backend = RemoteBackend("http://127.0.0.1:9", timeout=0.2)
        assert backend.get("measures", "abc.json") is None
        backend.put("measures", "abc.json", b"{}")     # must not raise
        assert not backend.contains("measures", "abc.json")
        assert backend.stats.errors >= 2

    def test_circuit_breaker_skips_timeouts_while_cooling_down(self):
        import time

        backend = RemoteBackend("http://127.0.0.1:9", timeout=0.2, failure_cooldown=60)
        assert backend.get("measures", "abc.json") is None   # pays the probe
        start = time.perf_counter()
        for _ in range(20):
            assert backend.get("measures", "abc.json") is None
        elapsed = time.perf_counter() - start
        # Cooling down: 20 lookups answer instantly instead of 20 timeouts.
        assert elapsed < 0.2, f"circuit breaker did not engage ({elapsed:.2f}s)"
        assert backend.stats.errors >= 21

    def test_url_normalisation_and_validation(self):
        assert RemoteBackend("localhost:8732").url == "http://localhost:8732"
        with pytest.raises(ValueError):
            RemoteBackend("ftp://host/")


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FailingConnection:
    """Stand-in for ``http.client.HTTPConnection`` that always errors.

    Counts connection *attempts* so the breaker tests can assert exactly how
    many requests were let through to the (dead) peer; ``gate`` optionally
    blocks inside the attempt so a second thread can race the half-open slot
    deterministically.
    """

    def __init__(self, attempts: list, gate: threading.Event | None = None) -> None:
        self.attempts = attempts
        self.gate = gate

    def request(self, *args, **kwargs) -> None:
        self.attempts.append(threading.current_thread().name)
        if self.gate is not None:
            assert self.gate.wait(timeout=30)
        raise ConnectionError("synthetic failure")

    def close(self) -> None:
        pass


class TestRemoteBackendHalfOpenProbe:
    """Fake-clock pins of the breaker's half-open behaviour."""

    def make_backend(self, clock, attempts, gate=None, cooldown=30.0):
        backend = RemoteBackend(
            "http://127.0.0.1:9", timeout=0.1, failure_cooldown=cooldown, clock=clock
        )
        backend._connection = lambda: FailingConnection(attempts, gate)  # type: ignore[method-assign]
        return backend

    def test_cooldown_blocks_then_admits_exactly_one_probe(self):
        clock = FakeClock()
        attempts: list = []
        backend = self.make_backend(clock, attempts)
        # Initial failure opens the breaker (2 attempts: request + reconnect).
        assert backend.get("measures", "a.json") is None
        assert len(attempts) == 2
        # During the cooldown nothing reaches the peer.
        for _ in range(5):
            assert backend.get("measures", "a.json") is None
        assert len(attempts) == 2
        # Cooldown elapsed: the next call is the single half-open probe...
        clock.advance(31.0)
        assert backend.get("measures", "a.json") is None
        assert len(attempts) == 4
        # ...whose failure restarts the cooldown.
        assert backend.get("measures", "a.json") is None
        assert len(attempts) == 4

    def test_concurrent_callers_do_not_pile_onto_the_probe(self):
        clock = FakeClock()
        attempts: list = []
        gate = threading.Event()
        backend = self.make_backend(clock, attempts)
        assert backend.get("measures", "a.json") is None      # open the breaker
        attempts.clear()
        clock.advance(31.0)
        # Thread A becomes the probe and blocks inside the connection...
        blocked_backend_gate = gate
        backend._connection = lambda: FailingConnection(attempts, blocked_backend_gate)  # type: ignore[method-assign]
        prober = threading.Thread(
            target=lambda: backend.get("measures", "a.json"), name="prober"
        )
        prober.start()
        deadline = threading.Event()
        for _ in range(100):
            if attempts:
                break
            deadline.wait(0.01)
        assert attempts == ["prober"]
        # ...while a concurrent caller fails fast without a second attempt.
        assert backend.get("measures", "b.json") is None
        assert attempts == ["prober"]
        gate.set()
        prober.join(timeout=30)
        # The probe's two attempts are both the prober's; nobody piled on.
        assert set(attempts) == {"prober"} and len(attempts) == 2

    def test_successful_probe_closes_the_breaker(self):
        clock = FakeClock()
        backend = RemoteBackend(
            "http://127.0.0.1:9", timeout=0.1, failure_cooldown=30.0, clock=clock
        )

        class HappyConnection:
            def request(self, *args, **kwargs):
                pass

            def getresponse(self):
                class R:
                    status = 404

                    def read(self):
                        return b""

                return R()

        attempts: list = []
        backend._connection = lambda: FailingConnection(attempts)  # type: ignore[method-assign]
        assert backend.get("measures", "a.json") is None      # open
        clock.advance(31.0)
        backend._connection = lambda: HappyConnection()  # type: ignore[method-assign]
        assert backend.get("measures", "a.json") is None      # probe: 404 = miss
        assert backend._down_until == 0.0                     # breaker closed
        assert not backend._probing


class SlowBackend(StoreBackend):
    """Remote-like backend whose puts block on an event (replicator tests)."""

    name = "slow-remote"
    persistent = True
    remote_capable = True

    def __init__(self) -> None:
        super().__init__()
        self.release = threading.Event()
        self.written: list[tuple[str, str]] = []

    def _get(self, kind, name):
        return None

    def _put(self, kind, name, payload):
        assert self.release.wait(timeout=30)
        self.written.append((kind, name))

    def _contains(self, kind, name):
        return False

    def _delete(self, kind, name):
        pass


class TestAsyncReplicator:
    def test_submit_returns_immediately_and_flush_waits(self):
        backend = SlowBackend()
        replicator = AsyncReplicator(max_queue=8)
        assert replicator.submit(backend, "measures", "a.json", b"{}")
        assert backend.written == []                  # producer did not block
        assert replicator.flush(timeout=0.05) is False  # barrier sees it pending
        backend.release.set()
        assert replicator.flush(timeout=30) is True
        assert backend.written == [("measures", "a.json")]
        assert backend.stats.puts == 1
        replicator.close()

    def test_overflow_drops_and_counts_on_the_tier(self):
        backend = SlowBackend()
        replicator = AsyncReplicator(max_queue=1)
        # First write occupies the drain thread (blocked), second fills the
        # queue, the rest must drop -- producers never block on replication.
        assert replicator.submit(backend, "k", "a.json", b"1")
        deadline = threading.Event()
        for _ in range(200):                          # wait for the drain pop
            if replicator.describe()["pending"] and replicator._queue.empty():
                break
            deadline.wait(0.01)
        assert replicator.submit(backend, "k", "b.json", b"2")
        assert replicator.submit(backend, "k", "c.json", b"3") is False
        assert replicator.submit(backend, "k", "d.json", b"4") is False
        assert backend.stats.dropped == 2
        assert replicator.describe()["dropped"] == 2
        backend.release.set()
        assert replicator.flush(timeout=30)
        assert [name for _, name in backend.written] == ["a.json", "b.json"]
        replicator.close()

    def test_close_is_idempotent_and_rejects_new_writes(self):
        backend = SlowBackend()
        backend.release.set()
        replicator = AsyncReplicator()
        replicator.submit(backend, "k", "a.json", b"1")
        assert replicator.flush(timeout=30)
        replicator.close()
        replicator.close()
        assert replicator.submit(backend, "k", "b.json", b"2") is False
        assert backend.stats.dropped == 1


class TestSpecs:
    def test_backend_spec_round_trips(self, tmp_path):
        for backend in (
            MemoryBackend(max_entries=7),
            DiskBackend(tmp_path),
            ShardedBackend.local(tmp_path, 3),
            RemoteBackend("http://127.0.0.1:1", timeout=2.5),
        ):
            rebuilt = backend_from_spec(backend.spec())
            assert type(rebuilt) is type(backend)
            assert rebuilt.spec() == backend.spec()

    def test_store_spec_rebuilds_tiers(self, tmp_path):
        store = ArtifactStore(tmp_path, shards=3, remote_url="http://127.0.0.1:1")
        clone = ArtifactStore.from_spec(store.spec())
        assert [tier.name for tier in clone.tiers] == ["sharded", "remote"]
        assert clone.root == tmp_path

    def test_sharded_spec_preserves_ring_shape(self, tmp_path):
        # A worker rebuilt from the spec must route every key to the same
        # shard as the parent -- including non-default ring densities.
        backend = ShardedBackend(
            [DiskBackend(tmp_path / f"s{i}") for i in range(3)], points_per_shard=16
        )
        rebuilt = backend_from_spec(backend.spec())
        assert rebuilt.points_per_shard == 16
        for i in range(64):
            name = f"key-{i}.json"
            assert backend.shard_index("k", name) == rebuilt.shard_index("k", name)

    def test_store_spec_accepts_bare_root(self, tmp_path):
        store = ArtifactStore.from_spec(tmp_path)
        assert store.persistent and store.root == tmp_path
        assert not ArtifactStore.from_spec(None).persistent

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError):
            backend_from_spec({"backend": "tape"})


class TestTierStack:
    def test_write_back_hits_every_tier_in_order(self):
        log: list = []
        upper, lower = RecordingBackend("upper", log), RecordingBackend("lower", log)
        store = ArtifactStore(backends=[upper, lower])
        store.put_json("measures", "k", {"eis": 0.5})
        assert log == [("upper", "put", "k.json"), ("lower", "put", "k.json")]
        assert upper.stats.puts == lower.stats.puts == 1

    def test_read_through_promotes_into_upper_tiers(self):
        log: list = []
        upper, lower = RecordingBackend("upper", log), RecordingBackend("lower", log)
        seed = ArtifactStore(backends=[lower])
        seed.put_json("measures", "k", {"eis": 0.5})

        store = ArtifactStore(backends=[upper, lower])
        assert store.get_json("measures", "k") == {"eis": 0.5}
        # The lower-tier hit was copied into the upper tier...
        assert upper.contains("measures", "k.json")
        assert upper.stats.misses == 1 and lower.stats.hits == 1
        # ...and a fresh store over the upper tier alone now hits it.
        assert ArtifactStore(backends=[upper]).get_json("measures", "k") == {"eis": 0.5}

    def test_memory_tier_short_circuits_byte_tiers(self):
        log: list = []
        upper = RecordingBackend("upper", log)
        store = ArtifactStore(backends=[upper])
        store.put_json("measures", "k", {"eis": 0.5})
        log.clear()
        store.get_json("measures", "k")    # decoded-object tier answers
        assert log == []

    def test_store_counters_unchanged_by_tier_shape(self, tmp_path):
        # The per-kind hit/miss contract is tier-agnostic: one lookup, one hit.
        for store in (
            ArtifactStore(),
            ArtifactStore(tmp_path / "plain"),
            ArtifactStore(tmp_path / "sharded", shards=3),
            ArtifactStore(backends=[MemoryBackend(), MemoryBackend()]),
        ):
            store.put_json("measures", "k", {"eis": 0.5})
            store.get_json("measures", "k")
            store.get_json("measures", "missing")
            stat = store.stat("measures")
            assert (stat.hits, stat.misses, stat.puts) == (1, 1, 1)

    def test_explicit_backends_exclude_shard_flags(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path, backends=[MemoryBackend()], shards=2)


class TestShardedStore:
    def test_warm_reload_across_store_instances(self, tmp_path):
        first = ArtifactStore(tmp_path, shards=4)
        arrays = {"P": np.arange(6.0).reshape(2, 3)}
        first.put_arrays("decomposition", "abc", arrays)
        first.put_json("measures", "def", {"eis": 0.25})

        fresh = ArtifactStore(tmp_path, shards=4)
        np.testing.assert_array_equal(
            fresh.get_arrays("decomposition", "abc")["P"], arrays["P"]
        )
        assert fresh.get_json("measures", "def") == {"eis": 0.25}
        assert fresh.stat("measures").hits == 1

    def test_single_shard_keeps_flat_layout(self, tmp_path):
        # shards<=1 preserves the original root/<kind>/<key> layout, so
        # existing --cache-dir trees stay byte-compatible.
        ArtifactStore(tmp_path, shards=1).put_json("measures", "k", {})
        assert (tmp_path / "measures" / "k.json").exists()

    def test_sharded_layout_uses_shard_directories(self, tmp_path):
        ArtifactStore(tmp_path, shards=3).put_json("measures", "k", {})
        shard_files = list(tmp_path.glob("shard-*/measures/k.json"))
        assert len(shard_files) == 1
