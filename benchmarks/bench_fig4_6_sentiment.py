"""Figures 4-6: the stability-memory tradeoff on the remaining sentiment tasks."""

from repro.experiments import fig4_6_sentiment


def test_fig4_6_sentiment(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: fig4_6_sentiment.run(pipeline, tasks=("mr", "mpqa")), rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    print("summary:", result.summary)
    assert len(result.rows) > 0
    assert result.summary["memory_slope_pct_per_doubling"] > 0
