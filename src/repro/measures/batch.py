"""Batch evaluation of many measures on one embedding pair, sharing work.

Evaluating the paper's five measures naively aligns the pair five times and
decomposes each embedding matrix three times (EIS, eigenspace overlap and PIP
loss each take an SVD).  :func:`compute_measure_batch` aligns once and threads
one :class:`~repro.measures.base.DecompositionCache` through every measure, so
each matrix is decomposed exactly once per pair.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.embeddings.base import Embedding
from repro.linalg import KernelPolicy
from repro.measures.base import (
    DEFAULT_TOP_K,
    DecompositionCache,
    EmbeddingDistanceMeasure,
    MeasureResult,
    aligned_top_k_pair,
)

__all__ = ["MeasureBatchResult", "compute_measure_batch"]


@dataclass
class MeasureBatchResult:
    """Results of one measure batch plus the cache that served it."""

    results: dict[str, MeasureResult] = field(default_factory=dict)
    cache: DecompositionCache = field(default_factory=DecompositionCache)

    @property
    def values(self) -> dict[str, float]:
        return {name: result.value for name, result in self.results.items()}

    def __getitem__(self, name: str) -> MeasureResult:
        return self.results[name]

    def __len__(self) -> int:
        return len(self.results)


def compute_measure_batch(
    measures: Mapping[str, EmbeddingDistanceMeasure],
    a: Embedding,
    b: Embedding,
    *,
    top_k: int | None = DEFAULT_TOP_K,
    cache: DecompositionCache | None = None,
    policy: KernelPolicy | None = None,
) -> MeasureBatchResult:
    """Evaluate every measure on the common (top-``k``) vocabulary of a pair.

    Parameters
    ----------
    measures:
        Name -> measure mapping (e.g. the pipeline's measure suite).
    a, b:
        The embedding pair; aligned once for the whole batch.
    top_k:
        Common-vocabulary restriction (see ``DEFAULT_TOP_K``).
    cache:
        Decomposition cache to share; a fresh one (carrying ``policy``) is
        created when omitted.  Passing a long-lived cache is only safe while
        the underlying matrices stay alive, as it keys by object identity.
    policy:
        Kernel policy for the whole batch: the aligned pair is cast to the
        policy dtype once, the shared decompositions dispatch through it, and
        it is handed to every measure's ``compute_aligned`` so measure-owned
        decompositions (the EIS anchor factors) follow the same policy unless
        the measure was constructed with an explicit one -- the policy is
        never half-applied.  ``None`` = process default (float64 / exact at
        measure shapes, i.e. bit-identical to the unpolicied path).
    """
    ra, rb = aligned_top_k_pair(a, b, top_k=top_k)
    if policy is not None and policy.np_dtype != np.float64:
        ra, rb = ra.astype(policy.np_dtype), rb.astype(policy.np_dtype)
    if cache is None:
        cache = DecompositionCache(policy=policy)
    elif policy is not None and cache.policy is not None and cache.policy != policy:
        # A long-lived cache (e.g. the serving layer's) dispatches
        # decompositions through its own policy; casting the pair under a
        # different one would half-apply the batch policy.
        warnings.warn(
            f"measure batch policy {policy} differs from the shared cache's "
            f"policy {cache.policy}; the cache's policy governs decompositions",
            UserWarning,
            stacklevel=2,
        )
    batch = MeasureBatchResult(cache=cache)
    for name, measure in measures.items():
        batch.results[name] = measure.compute_aligned(
            ra, rb, cache=batch.cache, policy=policy
        )
    return batch
