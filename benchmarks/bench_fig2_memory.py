"""Figure 2: % disagreement vs memory (bits/word) across the dimension-precision grid."""

from repro.experiments import fig2_memory


def test_fig2_memory(benchmark, grid_records):
    result = benchmark.pedantic(
        lambda: fig2_memory.summarize(grid_records), rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    print("summary:", result.summary)
    assert len(result.rows) > 0
    # Paper shape: instability decreases as memory grows (positive fitted slope).
    assert result.summary["memory_slope_pct_per_doubling"] > 0
