"""Benchmark the artifact-store backends: memory vs disk vs sharded vs remote.

Times raw ``put``/``get`` latency per backend for a small (JSON-sized) and a
large (decomposition-sized) payload, against:

1. ``memory``  -- in-process LRU byte cache;
2. ``disk``    -- durable atomic writes under one directory tree;
3. ``sharded`` -- consistent-hash fan-out over 4 local shard directories;
4. ``remote``  -- a live in-process ``repro-serve`` peer over HTTP
   keep-alive (skipped with ``--no-remote``).

Every backend must round-trip payloads verbatim, and the memory tier must
beat the remote tier on reads by a wide margin (the reason the tier stack
puts memory on top) -- the script exits non-zero otherwise, so CI can smoke
it.

Usage::

    PYTHONPATH=src python benchmarks/bench_store_backends.py --quick
    PYTHONPATH=src python benchmarks/bench_store_backends.py --ops 500
"""

from __future__ import annotations

import argparse
import asyncio
import statistics
import sys
import tempfile
import threading
import time
import warnings
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.analysis.reporting import format_table  # noqa: E402
from repro.engine.backends import (  # noqa: E402
    DiskBackend,
    MemoryBackend,
    RemoteBackend,
    ShardedBackend,
)

from conftest import write_benchmark_results  # noqa: E402


def _time_ops(fn, names: list[str]) -> list[float]:
    latencies = []
    for name in names:
        start = time.perf_counter()
        fn(name)
        latencies.append(time.perf_counter() - start)
    return latencies


def _boot_remote_peer(cache_dir: Path):
    """A live repro-serve instance (quick config) to use as a store peer."""
    from repro.engine.store import ArtifactStore
    from repro.serving import StabilityService
    from repro.serving.api import StabilityAPIServer, quick_serve_config

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        service = StabilityService(
            quick_serve_config(), store=ArtifactStore(cache_dir)
        )
    api = StabilityAPIServer(service, port=0)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(api.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    if not started.wait(timeout=30):
        raise RuntimeError("remote peer failed to start")

    def shutdown() -> None:
        asyncio.run_coroutine_threadsafe(api.stop(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        service.close()

    return f"http://127.0.0.1:{api.port}", shutdown


def run_benchmark(quick: bool, n_ops: int, with_remote: bool):
    n_ops = max(n_ops, 8)
    rng = np.random.default_rng(0)
    payloads = {
        "small": b'{"eis": 0.5, "pip": 1.25}',
        "large": rng.standard_normal(4096 if quick else 65536).tobytes(),
    }

    workdir = Path(tempfile.mkdtemp(prefix="bench-store-"))
    backends = {
        "memory": MemoryBackend(),
        "disk": DiskBackend(workdir / "disk"),
        "sharded": ShardedBackend.local(workdir / "sharded", 4),
    }
    shutdown = None
    if with_remote:
        url, shutdown = _boot_remote_peer(workdir / "peer-cache")
        backends["remote"] = RemoteBackend(url)

    rows, timings = [], {}
    try:
        for payload_name, payload in payloads.items():
            names = [f"bench-{payload_name}-{i}.json" for i in range(n_ops)]
            for backend_name, backend in backends.items():
                puts = _time_ops(
                    lambda name: backend.put("bench", name, payload), names
                )
                gets = _time_ops(lambda name: backend.get("bench", name), names)
                # Correctness first: every backend round-trips verbatim.
                for name in names[:4]:
                    got = backend.get("bench", name)
                    assert got == payload, (
                        f"{backend_name} corrupted {name}: "
                        f"{len(got or b'')} != {len(payload)} bytes"
                    )
                put_us = 1e6 * statistics.mean(puts)
                get_us = 1e6 * statistics.mean(gets)
                timings[(backend_name, payload_name)] = (put_us, get_us)
                rows.append({
                    "backend": backend_name,
                    "payload": f"{payload_name} ({len(payload)}B)",
                    "put_us": round(put_us, 1),
                    "get_us": round(get_us, 1),
                    "ops": n_ops,
                })
    finally:
        if shutdown is not None:
            shutdown()

    # The invariant the tier stack is built on: memory reads are orders of
    # magnitude cheaper than a peer round-trip, so promoting remote hits into
    # upper tiers pays for itself after one reuse.
    if with_remote:
        for payload_name in payloads:
            memory_get = timings[("memory", payload_name)][1]
            remote_get = timings[("remote", payload_name)][1]
            assert memory_get * 5 < remote_get, (
                f"memory tier not clearly faster than remote on {payload_name}: "
                f"{memory_get:.1f}us vs {remote_get:.1f}us"
            )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small payloads, few ops")
    parser.add_argument("--ops", type=int, default=None, help="operations per backend")
    parser.add_argument("--no-remote", action="store_true", help="skip the HTTP peer")
    parser.add_argument("--output", default=None, help="write results JSON here")
    args = parser.parse_args(argv)

    n_ops = args.ops if args.ops is not None else (32 if args.quick else 200)
    rows = run_benchmark(args.quick, n_ops, not args.no_remote)
    print(format_table(rows, title="artifact-store backend latency"))
    results = write_benchmark_results("store", rows=rows, output=args.output)
    print(f"results -> {results}")
    print("store backend invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
