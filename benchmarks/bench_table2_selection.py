"""Table 2: pairwise dimension-precision selection error per measure."""

from repro.experiments import table2_selection


def test_table2_selection(benchmark, grid_records):
    result = benchmark.pedantic(
        lambda: table2_selection.summarize(grid_records), rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    print("summary:", result.summary)
    assert len(result.rows) > 0
    errors = result.summary["mean_selection_error_by_measure"]
    # All error rates are probabilities; the top measures beat coin flipping.
    assert all(0.0 <= e <= 1.0 for e in errors.values())
    assert min(errors["eis"], errors["1-knn"]) <= 0.5
