"""Recurrent layers: LSTM cell, unidirectional LSTM, and BiLSTM.

The paper's NER model is a single-layer BiLSTM (Akbik et al., 2018) over
fixed word embeddings, optionally followed by a CRF.  Sequences at our scale
are short (tens of tokens), so an unrolled define-by-run LSTM over the
autograd engine is fast enough.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Module, _init_weight
from repro.nn.tensor import Tensor
from repro.utils.rng import check_random_state

__all__ = ["LSTMCell", "LSTM", "BiLSTM"]


class LSTMCell(Module):
    """A standard LSTM cell with coupled input/forget/cell/output gates."""

    def __init__(self, input_dim: int, hidden_dim: int, *, seed: int = 0):
        super().__init__()
        rng = check_random_state(seed)
        self.input_dim = int(input_dim)
        self.hidden_dim = int(hidden_dim)
        # Stack the four gates into single matrices for fewer matmuls.
        self.w_x = Tensor(_init_weight(rng, input_dim, 4 * hidden_dim), requires_grad=True)
        self.w_h = Tensor(_init_weight(rng, hidden_dim, 4 * hidden_dim), requires_grad=True)
        bias = np.zeros(4 * hidden_dim)
        # Positive forget-gate bias, the usual trick for trainability.
        bias[hidden_dim : 2 * hidden_dim] = 1.0
        self.bias = Tensor(bias, requires_grad=True)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        """One step: ``x`` is ``(batch, input_dim)``; returns ``(h, c)``."""
        h_prev, c_prev = state
        gates = x @ self.w_x + h_prev @ self.w_h + self.bias
        H = self.hidden_dim
        i = gates[:, 0:H].sigmoid()
        f = gates[:, H : 2 * H].sigmoid()
        g = gates[:, 2 * H : 3 * H].tanh()
        o = gates[:, 3 * H : 4 * H].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c

    def initial_state(self, batch_size: int) -> tuple[Tensor, Tensor]:
        zeros = np.zeros((batch_size, self.hidden_dim))
        return Tensor(zeros.copy()), Tensor(zeros.copy())


class LSTM(Module):
    """Unidirectional LSTM over a ``(seq_len, batch, input_dim)`` tensor."""

    def __init__(self, input_dim: int, hidden_dim: int, *, seed: int = 0):
        super().__init__()
        self.cell = LSTMCell(input_dim, hidden_dim, seed=seed)
        self.hidden_dim = hidden_dim

    def forward(self, inputs: Tensor, *, reverse: bool = False) -> Tensor:
        """Return hidden states stacked over time: ``(seq_len, batch, hidden)``."""
        seq_len, batch = inputs.shape[0], inputs.shape[1]
        state = self.cell.initial_state(batch)
        order = range(seq_len - 1, -1, -1) if reverse else range(seq_len)
        outputs: list[Tensor | None] = [None] * seq_len
        for t in order:
            h, c = self.cell(inputs[t], state)
            state = (h, c)
            outputs[t] = h
        return Tensor.stack(outputs, axis=0)


class BiLSTM(Module):
    """Bidirectional LSTM: concatenation of forward and backward hidden states."""

    def __init__(self, input_dim: int, hidden_dim: int, *, seed: int = 0):
        super().__init__()
        if hidden_dim % 2 != 0:
            raise ValueError("hidden_dim of a BiLSTM must be even")
        half = hidden_dim // 2
        self.forward_lstm = LSTM(input_dim, half, seed=seed)
        self.backward_lstm = LSTM(input_dim, half, seed=seed + 1)
        self.hidden_dim = hidden_dim

    def forward(self, inputs: Tensor) -> Tensor:
        fwd = self.forward_lstm(inputs)
        bwd = self.backward_lstm(inputs, reverse=True)
        return Tensor.concatenate([fwd, bwd], axis=-1)
