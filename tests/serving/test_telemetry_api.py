"""HTTP-level telemetry: trace-id echo, /trace endpoints, Prometheus
exposition, and the structured access log — against a live server."""

import json
import re
import warnings

import pytest

from repro.serving import ServiceConfig, StabilityService
from repro.serving.api import quick_serve_config

from tests.serving.test_api import get_json, live_server, request


@pytest.fixture(scope="module")
def server():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        service = StabilityService(
            quick_serve_config(),
            config=ServiceConfig(trace_sample=1.0, trace_slow_ms=0.0),
        )
    with live_server(service) as api:
        yield api
    service.close()


class TestTraceHeaders:
    def test_every_response_carries_a_trace_id(self, server):
        response, _ = request(server, "/healthz")
        trace_id = response.getheader("X-Trace-Id")
        assert trace_id and re.fullmatch(r"[0-9a-f]{32}", trace_id)

    def test_inbound_trace_id_is_honoured_and_echoed(self, server):
        response, _ = request(
            server, "/healthz", headers={"X-Trace-Id": "cafe" * 8}
        )
        assert response.getheader("X-Trace-Id") == "cafe" * 8

    def test_request_id_header_is_a_fallback(self, server):
        response, _ = request(
            server, "/healthz", headers={"X-Request-Id": "beef" * 8}
        )
        assert response.getheader("X-Trace-Id") == "beef" * 8

    def test_error_responses_also_echo(self, server):
        response, _ = request(
            server, "/measure?algorithm=svd&dim=4",     # missing precision: 400
            headers={"X-Trace-Id": "dead" * 8},
        )
        assert response.status == 400
        assert response.getheader("X-Trace-Id") == "dead" * 8


class TestTraceEndpoints:
    def test_measure_trace_contains_pipeline_spans(self, server):
        trace_id = "ab" * 16
        response, _ = request(
            server, "/measure?algorithm=svd&dim=4&precision=1&seed=0",
            headers={"X-Trace-Id": trace_id},
        )
        assert response.status == 200
        response, body = request(server, f"/trace/{trace_id}")
        assert response.status == 200
        assert response.getheader("Content-Type").startswith("application/x-ndjson")
        rows = [json.loads(line) for line in body.decode().strip().splitlines()]
        names = {row["name"] for row in rows}
        assert "GET /measure" in names
        assert {"service.ancestry_wait"} <= names
        # A cold cell also trains; a warm rerun of this test still has the
        # root + ancestry spans, so only assert the tree is well-formed.
        by_id = {row["span_id"]: row for row in rows}
        root = next(r for r in rows if r["parent_id"] is None)
        for row in rows:
            if row is not root and row["parent_id"] is not None:
                assert row["parent_id"] in by_id or row["parent_id"] == root["span_id"]
        assert all(row["trace_id"] == trace_id for row in rows)

    def test_recent_lists_newest_first_with_counters(self, server):
        request(server, "/healthz", headers={"X-Trace-Id": "11" * 16})
        status, payload = get_json(server, "/trace/recent?limit=100")
        assert status == 200
        assert any(t["trace_id"] == "11" * 16 for t in payload["traces"])
        assert payload["counters"]["started"] >= 1
        assert payload["counters"]["sample"] == 1.0

    def test_unknown_trace_is_404(self, server):
        status, payload = get_json(server, "/trace/ffffffffffffffff")
        assert status == 404
        assert "no retained trace" in payload["error"]

    def test_trace_endpoints_are_get_only(self, server):
        status, payload = get_json(server, "/trace/recent", method="POST", body={})
        assert status == 405

    def test_metrics_exposes_trace_counters(self, server):
        status, payload = get_json(server, "/metrics")
        assert status == 200
        traces = payload["telemetry"]["traces"]
        assert traces["started"] >= 1
        latency = payload["telemetry"]["latency"]
        assert "request" in latency
        assert any(op.startswith("/") for op in latency["request"])


_SAMPLE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$")


class TestPrometheusEndpoint:
    def test_exposition_is_valid_and_covers_counters(self, server):
        request(server, "/healthz")
        response, body = request(server, "/metrics?format=prometheus")
        assert response.status == 200
        assert response.getheader("Content-Type").startswith("text/plain")
        text = body.decode("utf-8")
        assert text.endswith("\n")
        names = set()
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            assert _SAMPLE.match(line), f"malformed sample: {line!r}"
            names.add(line.split("{", 1)[0].split(" ", 1)[0])
        assert "repro_latency_ms_bucket" in names
        assert "repro_latency_ms_count" in names
        # Existing serving counters ride along as flattened gauges.
        assert any(name.startswith("repro_serving") for name in names)

    def test_unknown_format_is_400(self, server):
        status, payload = get_json(server, "/metrics?format=xml")
        assert status == 400
        assert "format" in payload["error"]


class TestAccessLog:
    def test_one_json_line_per_request_when_enabled(self, capsys):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            service = StabilityService(quick_serve_config())
        try:
            with live_server(service, access_log=True) as api:
                request(api, "/healthz", headers={"X-Trace-Id": "ba" * 16})
                request(api, "/nope")
            lines = [
                json.loads(line)
                for line in capsys.readouterr().out.splitlines()
                if line.startswith("{")
            ]
        finally:
            service.close()
        by_path = {entry["path"]: entry for entry in lines}
        health = by_path["/healthz"]
        assert health["method"] == "GET"
        assert health["status"] == 200
        assert health["trace_id"] == "ba" * 16
        assert health["duration_ms"] >= 0
        assert by_path["/nope"]["status"] == 404

    def test_silent_by_default(self, capsys):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            service = StabilityService(quick_serve_config())
        try:
            with live_server(service) as api:
                request(api, "/healthz")
            out = capsys.readouterr().out
        finally:
            service.close()
        assert not any(line.startswith("{") for line in out.splitlines())


class TestDisabledTracing:
    def test_sampled_out_server_still_serves_and_echoes(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            service = StabilityService(
                quick_serve_config(),
                config=ServiceConfig(trace_sample=0.0, trace_slow_ms=0.0),
            )
        try:
            with live_server(service) as api:
                response, _ = request(
                    api, "/healthz", headers={"X-Trace-Id": "fe" * 16}
                )
                assert response.status == 200
                assert response.getheader("X-Trace-Id") == "fe" * 16
                status, payload = get_json(api, "/trace/recent")
                assert status == 200
                assert payload["traces"] == []
                assert payload["counters"]["untraced"] >= 1
                # Histograms still populate with tracing off.
                status, metrics = get_json(api, "/metrics")
                assert "request" in metrics["telemetry"]["latency"]
        finally:
            service.close()
