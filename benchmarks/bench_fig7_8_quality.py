"""Figures 7-8: quality-memory and quality-stability tradeoffs."""

from repro.experiments import fig7_8_quality


def test_fig7_8_quality(benchmark, pipeline):
    result = benchmark.pedantic(lambda: fig7_8_quality.run(pipeline), rounds=1, iterations=1)
    print()
    print(result.to_table())
    print("summary:", result.summary)
    assert len(result.rows) > 0
    # Paper shape: quality does not get worse as memory grows.
    assert result.summary["quality_vs_memory_spearman"] >= -0.2
