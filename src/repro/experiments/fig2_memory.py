"""Figure 2 and the Section 3.3 rule of thumb: instability vs memory.

Sweeps every dimension-precision combination, reports % disagreement as a
function of memory (bits/word), and fits the paper's linear-log rule of thumb
``DI ~ C_T - slope * log2(memory)``.  The paper finds a shared slope of about
1.3% per memory doubling and that precision has a slightly larger effect than
dimension.
"""

from __future__ import annotations

from repro.analysis.linear_log import fit_linear_log, relative_reduction_range
from repro.experiments.base import ExperimentResult, resolve_engine, resolve_pipeline
from repro.instability.grid import GridRecord, average_over_seeds
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig

__all__ = ["run", "rule_of_thumb"]


def run(
    pipeline: InstabilityPipeline | PipelineConfig | None = None,
    *,
    with_measures: bool = False,
    max_memory_for_fit: float | None = None,
    n_workers: int | None = None,
) -> ExperimentResult:
    """Reproduce Figure 2 (memory vs instability) and the rule-of-thumb fits."""
    pipe = resolve_pipeline(pipeline)
    records = resolve_engine(pipe, n_workers=n_workers).run(with_measures=with_measures)
    return summarize(records, max_memory_for_fit=max_memory_for_fit)


def summarize(
    records: list[GridRecord], *, max_memory_for_fit: float | None = None
) -> ExperimentResult:
    """Build the Figure 2 rows and rule-of-thumb summary from grid records."""
    averaged = average_over_seeds(records)
    rows = [
        {
            "task": r.task,
            "algorithm": r.algorithm,
            "dimension": r.dim,
            "precision": r.precision,
            "memory_bits_per_word": r.memory,
            "disagreement_pct": r.disagreement,
        }
        for r in sorted(averaged, key=lambda r: (r.task, r.algorithm, r.memory, r.dim))
    ]
    summary = rule_of_thumb(records, max_memory_for_fit=max_memory_for_fit)
    return ExperimentResult(name="figure-2-memory", rows=rows, summary=summary)


def rule_of_thumb(
    records: list[GridRecord], *, max_memory_for_fit: float | None = None
) -> dict:
    """Fit the joint memory trend plus the separate dimension/precision trends."""
    memory_fit = fit_linear_log(records, regressor="memory", max_memory=max_memory_for_fit)
    dim_fit = fit_linear_log(records, regressor="dim", max_memory=max_memory_for_fit)
    precision_fit = fit_linear_log(records, regressor="precision", max_memory=max_memory_for_fit)
    rel_low, rel_high = relative_reduction_range(memory_fit, records)
    return {
        "memory_slope_pct_per_doubling": memory_fit.slope,
        "memory_fit_r_squared": memory_fit.r_squared,
        "dimension_slope_pct_per_doubling": dim_fit.slope,
        "precision_slope_pct_per_doubling": precision_fit.slope,
        "relative_reduction_low": rel_low,
        "relative_reduction_high": rel_high,
        "n_observations": memory_fit.n_observations,
    }
