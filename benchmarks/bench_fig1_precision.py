"""Figure 1 (bottom): % disagreement vs quantization precision at a fixed dimension."""

from repro.experiments import fig1_precision


def test_fig1_precision(benchmark, pipeline):
    result = benchmark.pedantic(
        lambda: fig1_precision.run(pipeline), rounds=1, iterations=1
    )
    print()
    print(result.to_table())
    print("summary:", result.summary)
    assert len(result.rows) > 0
    # Paper shape: 1-bit is the least stable end of most series.
    assert result.summary["series_where_1bit_is_least_stable"] >= (
        result.summary["series_total"] / 2
    )
