"""The eigenspace overlap score (May et al., 2019).

``EO(X, X~) = (1/d) ||U^T U~||_F^2`` where ``U`` and ``U~`` are the left
singular vectors of the two embeddings and ``d`` is the larger of the two
ranks.  The score lies in [0, 1]; we expose the ``1 - EO`` distance form so
larger values mean more instability, matching the "1 - Eigenspace Overlap"
rows in the paper's tables.
"""

from __future__ import annotations

import numpy as np

from repro.measures.base import (
    MEASURES,
    DecompositionCache,
    EmbeddingDistanceMeasure,
    left_singular_vectors,
)
from repro.utils.validation import check_embedding_pair

__all__ = ["eigenspace_overlap", "EigenspaceOverlapDistance"]


def eigenspace_overlap(
    X: np.ndarray, X_tilde: np.ndarray, *, cache: DecompositionCache | None = None
) -> float:
    """Eigenspace overlap score in [0, 1] (1 = identical column spaces)."""
    X, X_tilde = check_embedding_pair(X, X_tilde)
    if cache is not None:
        # The rank-restricted bases are leading columns of the thin SVD bases,
        # so the overlap is a sub-block of the shared cross product.
        U = cache.left_singular(X)
        U_t = cache.left_singular(X_tilde)
        cross = cache.cross(X, X_tilde)[: U.shape[1], : U_t.shape[1]]
    else:
        U = left_singular_vectors(X)
        U_t = left_singular_vectors(X_tilde)
        cross = U.T @ U_t
    d = max(U.shape[1], U_t.shape[1])
    overlap = float(np.sum(cross**2, dtype=np.float64) / d)
    # Guard against round-off pushing the score outside [0, 1].
    return float(np.clip(overlap, 0.0, 1.0))


@MEASURES.register("1-eigenspace-overlap")
class EigenspaceOverlapDistance(EmbeddingDistanceMeasure):
    """``1 - eigenspace overlap score``."""

    name = "1-eigenspace-overlap"

    def compute(self, X: np.ndarray, X_tilde: np.ndarray) -> float:
        return 1.0 - eigenspace_overlap(X, X_tilde)

    def compute_cached(
        self, X: np.ndarray, X_tilde: np.ndarray, cache: DecompositionCache | None = None
    ) -> float:
        return 1.0 - eigenspace_overlap(X, X_tilde, cache=cache)
