"""Figure 1 (bottom): downstream instability vs precision at a fixed dimension.

The paper compresses 100-dimensional embeddings to b in {1, 2, 4, 8, 16, 32}
bits and finds that instability decreases as precision increases, with little
effect beyond 4 bits.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult, resolve_engine, resolve_pipeline
from repro.instability.grid import average_over_seeds
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig

__all__ = ["run"]


def run(
    pipeline: InstabilityPipeline | PipelineConfig | None = None,
    *,
    dim: int | None = None,
    precisions: tuple[int, ...] | None = None,
    n_workers: int | None = None,
) -> ExperimentResult:
    """Reproduce Figure 1 (bottom) at one dimension (default: the median of the sweep)."""
    pipe = resolve_pipeline(pipeline)
    dims = pipe.config.dimensions
    if dim is None:
        dim = int(sorted(dims)[len(dims) // 2])
    records = resolve_engine(pipe, n_workers=n_workers).run(
        dimensions=(dim,), precisions=precisions, with_measures=False
    )
    averaged = average_over_seeds(records)
    rows = [
        {
            "task": r.task,
            "algorithm": r.algorithm,
            "dimension": r.dim,
            "precision": r.precision,
            "disagreement_pct": r.disagreement,
        }
        for r in sorted(averaged, key=lambda r: (r.task, r.algorithm, r.precision))
    ]

    # Shape checks: 1-bit should be at least as unstable as full precision, and
    # the gap between 4-bit and 32-bit should be small ("minimal impact above
    # 4 bits" in the paper).
    low_worse = 0
    plateau_gaps = []
    series: dict[tuple[str, str], dict[int, float]] = {}
    for r in averaged:
        series.setdefault((r.task, r.algorithm), {})[r.precision] = r.disagreement
    total = 0
    for values in series.values():
        b_min, b_max = min(values), max(values)
        if b_min != b_max:
            total += 1
            if values[b_min] >= values[b_max]:
                low_worse += 1
        if 4 in values and 32 in values:
            plateau_gaps.append(abs(values[4] - values[32]))
    summary = {
        "series_where_1bit_is_least_stable": low_worse,
        "series_total": total,
        "mean_abs_gap_4bit_vs_32bit": float(np.mean(plateau_gaps)) if plateau_gaps else 0.0,
    }
    return ExperimentResult(name="figure-1-precision", rows=rows, summary=summary)
