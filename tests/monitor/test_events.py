"""MonitorEventLog: sequencing, bounded buffering, blocking tails."""

import threading

import pytest

from repro.monitor.events import MonitorEventLog


class TestEmitAndRead:
    def test_sequence_numbers_are_monotonic(self):
        log = MonitorEventLog()
        first = log.emit("snapshot_cut", version=1)
        second = log.emit("retrain_started", version=2)
        assert first["seq"] == 1 and second["seq"] == 2
        assert log.last_seq == 2
        assert log.emitted == 2

    def test_events_since(self):
        log = MonitorEventLog()
        for version in range(5):
            log.emit("snapshot_cut", version=version)
        tail = log.events(since=3)
        assert [e["seq"] for e in tail] == [4, 5]
        assert log.events(since=5) == []

    def test_events_carry_payload_and_kind(self):
        log = MonitorEventLog()
        log.emit("drift_alert", alerts=[{"measure": "eis"}])
        (event,) = log.events()
        assert event["kind"] == "drift_alert"
        assert event["alerts"] == [{"measure": "eis"}]
        assert "ts" in event

    def test_reads_return_copies(self):
        log = MonitorEventLog()
        log.emit("snapshot_cut")
        log.events()[0]["kind"] = "tampered"
        assert log.events()[0]["kind"] == "snapshot_cut"


class TestBounding:
    def test_ring_buffer_evicts_oldest(self):
        log = MonitorEventLog(max_events=3)
        for version in range(6):
            log.emit("snapshot_cut", version=version)
        assert [e["seq"] for e in log.events()] == [4, 5, 6]
        assert log.emitted == 6                 # total emitted is unbounded
        assert log.last_seq == 6

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            MonitorEventLog(max_events=0)


class TestWait:
    def test_wait_times_out_empty(self):
        log = MonitorEventLog()
        assert log.wait(since=0, timeout=0.05) == []

    def test_wait_returns_buffered_immediately(self):
        log = MonitorEventLog()
        log.emit("snapshot_cut")
        events = log.wait(since=0, timeout=10)
        assert len(events) == 1

    def test_wait_wakes_on_emit(self):
        log = MonitorEventLog()
        result: list = []

        def tail() -> None:
            result.extend(log.wait(since=0, timeout=30))

        thread = threading.Thread(target=tail)
        thread.start()
        log.emit("measures_ready")
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert result and result[0]["kind"] == "measures_ready"
