"""Histogram bucket/percentile math and Prometheus exposition validity."""

import math
import re
import threading

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS_MS,
    LatencyHistogram,
    MetricsRegistry,
    escape_label_value,
    render_prometheus,
    telemetry_snapshot,
)


class TestBucketing:
    def test_observation_lands_in_owning_bucket(self):
        hist = LatencyHistogram(buckets=(1.0, 10.0, 100.0))
        hist.observe(0.5)     # <= 1.0
        hist.observe(1.0)     # boundary belongs to the 1.0 bucket (le semantics)
        hist.observe(5.0)     # <= 10.0
        hist.observe(250.0)   # +Inf
        assert hist.counts == [2, 1, 0, 1]
        assert hist.count == 4
        assert hist.sum_ms == pytest.approx(256.5)

    def test_bounds_must_be_increasing(self):
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=(5.0, 1.0))
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=())

    def test_min_max_track_observations(self):
        hist = LatencyHistogram()
        for ms in (3.0, 0.4, 72.0):
            hist.observe(ms)
        summary = hist.summary()
        assert summary["min_ms"] == 0.4
        assert summary["max_ms"] == 72.0

    def test_empty_summary_is_all_zero(self):
        summary = LatencyHistogram().summary()
        assert summary == {
            "count": 0, "sum_ms": 0.0, "min_ms": 0.0, "max_ms": 0.0,
            "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
        }


class TestPercentiles:
    def test_uniform_distribution_quantiles_within_bucket_width(self):
        # 1000 samples uniform over (0, 100]ms: every quantile estimate must
        # sit inside the bucket owning the true quantile.
        hist = LatencyHistogram()
        for i in range(1, 1001):
            hist.observe(i / 10.0)
        for q, true_value in ((0.50, 50.0), (0.95, 95.0), (0.99, 99.0)):
            estimate = hist.percentile(q)
            # The true value's owning bucket is (25, 50] or (50, 100].
            owning_hi = next(b for b in DEFAULT_BUCKETS_MS if b >= true_value)
            owning_lo = max((b for b in DEFAULT_BUCKETS_MS if b < true_value), default=0.0)
            assert owning_lo <= estimate <= owning_hi, (q, estimate)

    def test_point_mass_is_exact(self):
        hist = LatencyHistogram()
        for _ in range(100):
            hist.observe(7.0)
        # All mass in one bucket and clamped to [min, max] = [7, 7].
        assert hist.percentile(0.5) == 7.0
        assert hist.percentile(0.99) == 7.0

    def test_two_point_distribution_orders_quantiles(self):
        hist = LatencyHistogram()
        for _ in range(90):
            hist.observe(1.0)        # 90% fast
        for _ in range(10):
            hist.observe(400.0)      # 10% slow
        p50, p95, p99 = (hist.percentile(q) for q in (0.5, 0.95, 0.99))
        assert p50 <= 1.0 + 1e-9
        assert p95 > 100.0           # inside the slow bucket (250, 500]
        assert p50 <= p95 <= p99 <= 400.0

    def test_estimates_clamped_to_observed_range(self):
        hist = LatencyHistogram()
        hist.observe(3.0)
        # One sample in bucket (2.5, 5]: interpolation alone would answer
        # inside the bucket, the clamp pins it to the sample.
        assert hist.percentile(0.5) == 3.0
        assert hist.percentile(1.0) == 3.0

    def test_invalid_quantile_rejected(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_plus_inf_bucket_uses_observed_max(self):
        hist = LatencyHistogram(buckets=(1.0,))
        hist.observe(500.0)
        hist.observe(900.0)
        estimate = hist.percentile(0.99)
        assert 1.0 <= estimate <= 900.0
        assert math.isfinite(estimate)


class TestMerge:
    def test_merge_equals_union_of_observations(self):
        a, b, union = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        for ms in (0.2, 3.0, 40.0):
            a.observe(ms)
            union.observe(ms)
        for ms in (7.0, 7.0, 900.0):
            b.observe(ms)
            union.observe(ms)
        a.merge(b)
        assert a.counts == union.counts
        assert a.count == union.count
        assert a.sum_ms == pytest.approx(union.sum_ms)
        assert a.summary() == union.summary()

    def test_layout_mismatch_rejected(self):
        a = LatencyHistogram(buckets=(1.0, 2.0))
        b = LatencyHistogram(buckets=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_concurrent_observations_none_lost(self):
        hist = LatencyHistogram()
        n, threads = 2000, 8

        def work():
            for i in range(n):
                hist.observe(i % 50 + 0.1)

        pool = [threading.Thread(target=work) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert hist.count == n * threads
        assert sum(hist.counts) == n * threads


class TestRegistry:
    def test_snapshot_groups_by_metric_then_op(self):
        registry = MetricsRegistry()
        registry.observe("request", "/measure", 2.0)
        registry.observe("request", "/grid", 20.0)
        registry.observe("phase", "train", 200.0)
        snapshot = registry.snapshot()
        assert set(snapshot) == {"request", "phase"}
        assert set(snapshot["request"]) == {"/measure", "/grid"}
        assert snapshot["phase"]["train"]["count"] == 1

    def test_telemetry_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.observe("store", "disk.get", 1.0)
        snapshot = telemetry_snapshot(registry)
        assert set(snapshot) == {"latency"}
        assert snapshot["latency"]["store"]["disk.get"]["count"] == 1


#: One Prometheus text-format sample line: name{labels} value
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$"
)


def _parse_exposition(text: str) -> list[str]:
    """Validate basic exposition rules; return the sample lines."""
    assert text.endswith("\n"), "exposition must end with a newline"
    samples = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _SAMPLE.match(line), f"malformed sample line: {line!r}"
        samples.append(line)
    return samples


class TestPrometheus:
    def test_histogram_family_is_cumulative_and_complete(self):
        registry = MetricsRegistry()
        for ms in (0.2, 3.0, 3.0, 700.0):
            registry.observe("request", "/measure", ms)
        text = render_prometheus({}, registry)
        samples = _parse_exposition(text)
        buckets = [s for s in samples if s.startswith("repro_latency_ms_bucket")]
        # One line per bound plus +Inf, cumulative counts non-decreasing.
        assert len(buckets) == len(DEFAULT_BUCKETS_MS) + 1
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)
        assert counts[-1] == 4
        assert any('le="+Inf"' in line for line in buckets)
        assert any(s.startswith("repro_latency_ms_sum") for s in samples)
        count_line = next(s for s in samples if s.startswith("repro_latency_ms_count"))
        assert count_line.endswith(" 4")

    def test_stats_leaves_become_gauges(self):
        text = render_prometheus(
            {"serving": {"requests": 7, "warm": True},
             "pipeline": {"trainings": 2}},
            MetricsRegistry(),
        )
        samples = _parse_exposition(text)
        assert "repro_serving_requests 7" in samples
        assert "repro_serving_warm 1" in samples        # bools expose as 0/1
        assert "repro_pipeline_trainings 2" in samples

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.observe("request", 'weird"op\\with\nnews', 1.0)
        text = render_prometheus({}, registry)
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        # No raw newline survives inside any label value.
        for line in text.splitlines():
            if "weird" in line:
                assert _SAMPLE.match(line), line

    def test_escape_label_value(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_non_finite_and_string_leaves_skipped(self):
        text = render_prometheus(
            {"engine": {"nan": float("nan"), "inf": float("inf"), "name": "x"}},
            MetricsRegistry(),
        )
        assert "nan" not in text.replace("# HELP", "").replace("# TYPE", "")
        assert "repro_engine_name" not in text

    def test_duplicate_sanitized_paths_emit_one_sample(self):
        text = render_prometheus(
            {"a": {"b.c": 1, "b_c": 2}}, MetricsRegistry()
        )
        samples = _parse_exposition(text)
        assert samples.count("repro_a_b_c 1") == 1
        assert not any(s.startswith("repro_a_b_c 2") for s in samples)

    def test_list_items_keyed_by_name(self):
        text = render_prometheus(
            {"store": {"tiers": [{"name": "disk", "gets": 3},
                                 {"name": "remote", "gets": 5}]}},
            MetricsRegistry(),
        )
        samples = _parse_exposition(text)
        assert "repro_store_tiers_disk_gets 3" in samples
        assert "repro_store_tiers_remote_gets 5" in samples
