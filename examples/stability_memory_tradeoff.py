"""Reproduce the stability-memory tradeoff (Figures 1-2) on a small grid.

Sweeps dimension and precision for two embedding algorithms, prints %
disagreement as a function of memory (bits/word), and fits the paper's
linear-log rule of thumb (Section 3.3).

Run with: ``python examples/stability_memory_tradeoff.py``
"""

from repro.analysis.reporting import format_table
from repro.experiments import fig2_memory, quick_pipeline_config
from repro.instability.pipeline import InstabilityPipeline
from repro.utils.logging import configure_logging


def main() -> None:
    configure_logging()
    config = quick_pipeline_config(
        algorithms=("cbow", "mc"),
        dimensions=(8, 16, 32),
        precisions=(1, 2, 4, 32),
        tasks=("sst2", "conll"),
    )
    pipeline = InstabilityPipeline(config)

    result = fig2_memory.run(pipeline)
    print(result.to_table())
    print()

    summary = result.summary
    print("rule of thumb (linear-log fits):")
    print(f"  doubling the memory reduces disagreement by "
          f"~{summary['memory_slope_pct_per_doubling']:.2f}% (absolute)")
    print(f"  doubling the dimension: ~{summary['dimension_slope_pct_per_doubling']:.2f}%")
    print(f"  doubling the precision: ~{summary['precision_slope_pct_per_doubling']:.2f}%")
    print(f"  relative reduction range: "
          f"{100 * summary['relative_reduction_low']:.0f}% - "
          f"{100 * summary['relative_reduction_high']:.0f}%")

    # The same records, viewed per memory budget (the Figure 2 series).
    budget_rows = {}
    for row in result.rows:
        budget_rows.setdefault(row["memory_bits_per_word"], []).append(row["disagreement_pct"])
    series = [
        {"memory_bits_per_word": m, "mean_disagreement_pct": sum(v) / len(v)}
        for m, v in sorted(budget_rows.items())
    ]
    print()
    print(format_table(series, title="mean disagreement per memory budget"))


if __name__ == "__main__":
    main()
