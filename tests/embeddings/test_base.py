"""Tests for the Embedding container."""

import numpy as np
import pytest

from repro.corpus.vocabulary import Vocabulary
from repro.embeddings.base import Embedding


@pytest.fixture()
def small_embedding():
    vocab = Vocabulary({"a": 10, "b": 5, "c": 2})
    vectors = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    return Embedding(vocab=vocab, vectors=vectors, metadata={"algorithm": "test"})


class TestConstruction:
    def test_shape_mismatch_raises(self):
        vocab = Vocabulary({"a": 1, "b": 1})
        with pytest.raises(ValueError, match="rows"):
            Embedding(vocab=vocab, vectors=np.ones((3, 2)))

    def test_basic_properties(self, small_embedding):
        assert small_embedding.dim == 2
        assert small_embedding.n_words == 3
        assert len(small_embedding) == 3
        assert "a" in small_embedding

    def test_vector_lookup(self, small_embedding):
        np.testing.assert_allclose(small_embedding.vector("a"), [1.0, 0.0])
        with pytest.raises(KeyError):
            small_embedding.vector("zzz")
        assert small_embedding.get("zzz") is None


class TestRestrict:
    def test_restrict_by_words(self, small_embedding):
        sub = small_embedding.restrict(["b", "c"])
        assert sub.n_words == 2
        np.testing.assert_allclose(sub.vector("b"), [0.0, 1.0])

    def test_restrict_by_top_k(self, small_embedding):
        sub = small_embedding.restrict(2)
        assert sub.vocab.words == ["a", "b"]

    def test_restrict_unknown_word_raises(self, small_embedding):
        with pytest.raises(KeyError):
            small_embedding.restrict(["nope"])

    def test_with_vectors_updates_metadata(self, small_embedding):
        new = small_embedding.with_vectors(np.zeros((3, 2)), precision=4)
        assert new.metadata["precision"] == 4
        assert new.metadata["algorithm"] == "test"
        np.testing.assert_allclose(new.vectors, 0.0)


class TestAlignedPair:
    def test_rows_are_word_aligned(self):
        vocab_a = Vocabulary({"a": 3, "b": 2, "c": 1})
        vocab_b = Vocabulary({"c": 5, "a": 4, "d": 1})
        emb_a = Embedding(vocab_a, np.arange(6, dtype=float).reshape(3, 2))
        emb_b = Embedding(vocab_b, np.arange(6, dtype=float).reshape(3, 2) * 10)
        ra, rb = Embedding.aligned_pair(emb_a, emb_b)
        assert ra.vocab.words == rb.vocab.words
        for word in ra.vocab.words:
            np.testing.assert_allclose(ra.vector(word), emb_a.vector(word))
            np.testing.assert_allclose(rb.vector(word), emb_b.vector(word))

    def test_disjoint_vocabulary_raises(self):
        emb_a = Embedding(Vocabulary({"a": 1}), np.ones((1, 2)))
        emb_b = Embedding(Vocabulary({"b": 1}), np.ones((1, 2)))
        with pytest.raises(ValueError, match="no vocabulary"):
            Embedding.aligned_pair(emb_a, emb_b)

    def test_top_k_restriction(self):
        vocab = Vocabulary({"a": 3, "b": 2, "c": 1})
        emb = Embedding(vocab, np.eye(3))
        ra, rb = Embedding.aligned_pair(emb, emb, top_k=2)
        assert ra.n_words == 2


class TestNearestNeighbors:
    def test_self_excluded_and_sorted(self, small_embedding):
        neighbors = small_embedding.nearest_neighbors("a", k=2)
        assert len(neighbors) == 2
        assert all(word != "a" for word, _ in neighbors)
        # "c" = (1,1) is closer to "a" = (1,0) than "b" = (0,1) by cosine.
        assert neighbors[0][0] == "c"

    def test_normalized_vectors_zero_row_safe(self):
        vocab = Vocabulary({"a": 2, "b": 1})
        emb = Embedding(vocab, np.array([[0.0, 0.0], [3.0, 4.0]]))
        normed = emb.normalized_vectors()
        np.testing.assert_allclose(normed[emb.vocab["b"]], [0.6, 0.8])
        np.testing.assert_allclose(normed[emb.vocab["a"]], [0.0, 0.0])


class TestPersistence:
    def test_save_and_load_round_trip(self, small_embedding, tmp_path):
        path = tmp_path / "emb.npz"
        small_embedding.save(path)
        loaded = Embedding.load(path)
        assert loaded.vocab.words == small_embedding.vocab.words
        np.testing.assert_allclose(loaded.vectors, small_embedding.vectors)

    def test_saved_files_never_need_pickle(self, small_embedding, tmp_path):
        path = tmp_path / "emb.npz"
        small_embedding.save(path)
        with np.load(path) as data:               # allow_pickle=False
            assert all(data[name].dtype != object for name in data.files)

    def test_legacy_pickled_file_gets_an_informative_error(
        self, small_embedding, tmp_path
    ):
        # Pre-pickle-free versions saved words as dtype=object; loading them
        # must fail with an explanation, not an opaque numpy error.
        path = tmp_path / "legacy.npz"
        np.savez_compressed(
            path,
            vectors=small_embedding.vectors,
            words=np.array(small_embedding.vocab.words, dtype=object),
            counts=small_embedding.vocab.counts,
        )
        with pytest.raises(ValueError, match="older version"):
            Embedding.load(path)
