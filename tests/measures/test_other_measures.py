"""Tests for the k-NN, semantic displacement, PIP loss and eigenspace overlap measures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measures.eigenspace_overlap import EigenspaceOverlapDistance, eigenspace_overlap
from repro.measures.knn import KNNDistance, knn_overlap
from repro.measures.pip_loss import PIPLoss, pip_loss
from repro.measures.semantic_displacement import SemanticDisplacement, semantic_displacement


class TestKNN:
    def test_identical_embeddings_full_overlap(self, rng):
        X = rng.standard_normal((50, 8))
        assert knn_overlap(X, X, k=5, num_queries=30) == pytest.approx(1.0)

    def test_range(self, rng):
        X = rng.standard_normal((40, 6))
        Y = rng.standard_normal((40, 6))
        value = knn_overlap(X, Y, k=5, num_queries=40)
        assert 0.0 <= value <= 1.0

    def test_distance_form(self, rng):
        X = rng.standard_normal((30, 4))
        measure = KNNDistance(k=3, num_queries=20, seed=0)
        assert measure.compute(X, X) == pytest.approx(0.0)

    def test_k_larger_than_vocab_is_capped(self, rng):
        X = rng.standard_normal((6, 3))
        assert 0.0 <= knn_overlap(X, X, k=50, num_queries=6) <= 1.0

    def test_query_sample_is_seeded(self, rng):
        X = rng.standard_normal((60, 5))
        Y = rng.standard_normal((60, 5))
        a = knn_overlap(X, Y, k=5, num_queries=20, seed=3)
        b = knn_overlap(X, Y, k=5, num_queries=20, seed=3)
        assert a == b

    def test_invalid_args(self, rng):
        X = rng.standard_normal((5, 2))
        with pytest.raises(ValueError):
            knn_overlap(X, X, k=0)
        with pytest.raises(ValueError):
            knn_overlap(np.ones((1, 2)), np.ones((1, 2)))

    def test_perturbation_monotonicity(self, rng):
        """A larger perturbation should not look more similar."""
        X = rng.standard_normal((80, 10))
        small = X + 0.01 * rng.standard_normal(X.shape)
        large = X + 1.0 * rng.standard_normal(X.shape)
        assert knn_overlap(X, small, num_queries=80) >= knn_overlap(X, large, num_queries=80)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_vectorized_overlap_equals_per_row_loop(self, rng, seed):
        """The searchsorted overlap is pinned to the seed repo's intersect1d loop."""
        from repro.measures.knn import _top_k_neighbors
        from repro.utils.rng import check_random_state

        X = rng.standard_normal((70, 8))
        Y = rng.standard_normal((70, 8))
        k, q = 5, 40
        queries = check_random_state(seed).choice(70, size=q, replace=False)
        top_a = _top_k_neighbors(X, queries, k)
        top_b = _top_k_neighbors(Y, queries, k)
        reference = np.empty(q)
        for row in range(q):
            reference[row] = len(np.intersect1d(top_a[row], top_b[row]))
        loop_value = float(np.mean(reference) / top_a.shape[1])
        assert knn_overlap(X, Y, k=k, num_queries=q, seed=seed) == loop_value


class TestSemanticDisplacement:
    def test_zero_for_rotated_copy(self, rng):
        X = rng.standard_normal((30, 5))
        q, _ = np.linalg.qr(rng.standard_normal((5, 5)))
        assert semantic_displacement(X, X @ q) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_noise(self, rng):
        X = rng.standard_normal((30, 5))
        Y = X + rng.standard_normal(X.shape)
        assert semantic_displacement(X, Y) > 0

    def test_requires_same_dim(self, rng):
        with pytest.raises(ValueError):
            semantic_displacement(rng.standard_normal((10, 3)), rng.standard_normal((10, 4)))

    def test_bounded_by_two(self, rng):
        X = rng.standard_normal((20, 4))
        Y = rng.standard_normal((20, 4))
        assert 0.0 <= semantic_displacement(X, Y) <= 2.0

    def test_measure_class_flag(self):
        assert SemanticDisplacement.requires_same_dim is True


class TestPIPLoss:
    def test_zero_on_identical(self, rng):
        X = rng.standard_normal((25, 6))
        assert pip_loss(X, X) == pytest.approx(0.0, abs=1e-8)

    def test_matches_dense_computation(self, rng):
        X = rng.standard_normal((15, 4))
        Y = rng.standard_normal((15, 6))
        dense = np.linalg.norm(X @ X.T - Y @ Y.T)
        assert pip_loss(X, Y) == pytest.approx(dense, rel=1e-9)

    def test_invariant_to_rotation(self, rng):
        X = rng.standard_normal((20, 5))
        q, _ = np.linalg.qr(rng.standard_normal((5, 5)))
        assert pip_loss(X, X @ q) == pytest.approx(0.0, abs=1e-7)

    def test_symmetric(self, rng):
        X = rng.standard_normal((12, 3))
        Y = rng.standard_normal((12, 5))
        assert pip_loss(X, Y) == pytest.approx(pip_loss(Y, X), rel=1e-12)

    def test_measure_class(self, rng):
        X = rng.standard_normal((12, 3))
        assert PIPLoss().compute(X, X) == pytest.approx(0.0, abs=1e-8)


class TestEigenspaceOverlap:
    def test_identical_is_one(self, rng):
        X = rng.standard_normal((30, 5))
        assert eigenspace_overlap(X, X) == pytest.approx(1.0)

    def test_orthogonal_subspaces_is_zero(self):
        X = np.zeros((10, 2))
        X[:2, :2] = np.eye(2)
        Y = np.zeros((10, 2))
        Y[2:4, :2] = np.eye(2)
        assert eigenspace_overlap(X, Y) == pytest.approx(0.0, abs=1e-12)

    def test_range(self, rng):
        X = rng.standard_normal((25, 4))
        Y = rng.standard_normal((25, 8))
        assert 0.0 <= eigenspace_overlap(X, Y) <= 1.0

    def test_distance_form(self, rng):
        X = rng.standard_normal((25, 4))
        assert EigenspaceOverlapDistance().compute(X, X) == pytest.approx(0.0, abs=1e-9)

    def test_invariant_to_column_mixing(self, rng):
        X = rng.standard_normal((25, 4))
        mix = rng.standard_normal((4, 4)) + 4 * np.eye(4)
        assert eigenspace_overlap(X, X @ mix) == pytest.approx(1.0, rel=1e-6)


class TestMeasureInterface:
    def test_compute_embeddings_result_fields(self, embedding_pair):
        emb_a, emb_b = embedding_pair
        for measure in (KNNDistance(num_queries=50), PIPLoss(), SemanticDisplacement(),
                        EigenspaceOverlapDistance()):
            result = measure.compute_embeddings(emb_a, emb_b)
            assert result.measure == measure.name
            assert result.n_words == emb_a.n_words
            assert np.isfinite(result.value)

    def test_registry_contains_all_measures(self):
        from repro.measures.base import MEASURES

        for name in ("eis", "1-knn", "semantic-displacement", "pip", "1-eigenspace-overlap"):
            assert name in MEASURES


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=3, max_value=8))
def test_property_measures_zero_on_self_and_nonnegative(dim):
    rng = np.random.default_rng(dim)
    X = rng.standard_normal((20, dim))
    Y = rng.standard_normal((20, dim))
    assert pip_loss(X, X) == pytest.approx(0.0, abs=1e-7)
    assert semantic_displacement(X, X) == pytest.approx(0.0, abs=1e-9)
    assert pip_loss(X, Y) >= 0
    assert semantic_displacement(X, Y) >= 0
    assert 0.0 <= eigenspace_overlap(X, Y) <= 1.0
