"""Coordinator crash-safety: checkpoint, kill, resume, finish bit-identical.

The acceptance criterion of the fault-tolerance work: a coordinator dies
mid-run and a fresh one, pointed at the same artifact store, rebuilds the
run from its ``cluster-run`` checkpoints -- already-committed cells replay
(zero re-trainings), only unfinished groups re-lease, and the completed
stream is bit-identical to a serial ``GridEngine.run()``.  Exercised twice:
deterministically against the bare state machine with a fake clock, and
end-to-end over live HTTP with real workers and an abrupt server stop.
"""

import asyncio
import http.client
import json
import threading
import warnings

from repro.cluster import ClusterWorker, config_wire_payload, plan_from_wire, plan_wire_payload
from repro.cluster.coordinator import CHECKPOINT_KIND, ClusterCoordinator
from repro.engine import GridEngine, plan_grid
from repro.engine.store import ArtifactStore
from repro.serving import ServiceConfig, StabilityService
from repro.serving.api import StabilityAPIServer, quick_serve_config

from tests.cluster.test_coordinator import (
    FakeClock,
    make_plan,
    rows_for_group,
)


def make_store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


def make_coordinator(store, clock=None, **kwargs):
    return ClusterCoordinator(store=store, clock=clock or FakeClock(), **kwargs)


class TestPlanWireFormat:
    def test_plan_round_trips_through_json(self):
        for plan in (
            make_plan(),
            make_plan(with_measures=False),
            make_plan(seeds=(0, 1), dimensions=(4,)),
        ):
            rebuilt = plan_from_wire(json.loads(json.dumps(plan_wire_payload(plan))))
            assert rebuilt == plan
            assert rebuilt.cell_keys() == plan.cell_keys()


class TestCheckpointResume:
    """Fake-clock variant: kill = drop the coordinator object on the floor."""

    def test_mid_run_crash_resumes_and_finishes_bit_identical(self, tmp_path):
        store = make_store(tmp_path)
        first = make_coordinator(store)
        plan = make_plan(seeds=(0, 1), with_measures=False)   # 4 groups, 8 cells
        run_id = first.create_run(plan)
        # Two groups complete, one is in flight (leased), one never starts.
        done_indices = []
        for worker in ("w1", "w2"):
            lease = first.lease(worker)
            assert first.complete(
                worker, lease["lease_id"], run_id, lease["group_index"],
                rows_for_group(plan, lease["group_index"]),
            )["status"] == "ok"
            done_indices.append(lease["group_index"])
        inflight = first.lease("w3")
        assert inflight["status"] == "lease"
        # CRASH: the first coordinator is never touched again.  A second one
        # over the same store rebuilds everything durable.
        second = make_coordinator(store)
        assert second.resume_runs() == 1
        assert second.resume_runs() == 0                      # idempotent
        assert second.counters["runs_resumed"] == 1
        assert second.counters["records_replayed"] == 2 * len(done_indices)
        status = second.run_status(run_id)
        assert status["done"] == len(done_indices)
        assert status["pending"] == 4 - len(done_indices)     # leased -> pending
        assert status["leased"] == 0
        # The in-flight group's attempt survived the crash: its next lease
        # counts as a reassignment, preserving the failure budget semantics.
        remaining = []
        while True:
            lease = second.lease("w9")
            if lease["status"] != "lease":
                break
            remaining.append(lease["group_index"])
            assert second.complete(
                "w9", lease["lease_id"], run_id, lease["group_index"],
                rows_for_group(plan, lease["group_index"]),
            )["status"] == "ok"
        # Zero duplicate executions of already-committed groups: the resumed
        # coordinator only leased what the checkpoint said was unfinished.
        assert set(remaining) == set(range(4)) - set(done_indices)
        assert second.counters["leases_reassigned"] == 1      # the in-flight one
        assert second.counters["duplicate_results"] == 0
        assert second.run_status(run_id)["completed"] is True
        # The resumed stream is the full canonical stream, replayed records
        # included -- byte-for-byte what an uninterrupted run would emit.
        records = list(second.records(run_id, poll_interval=0.01))
        assert [
            (r.algorithm, r.dim, r.precision, r.seed, r.task) for r in records
        ] == plan.cell_keys()

    def test_finished_run_resumes_for_status_and_replay(self, tmp_path):
        store = make_store(tmp_path)
        first = make_coordinator(store)
        plan = make_plan(with_measures=False)
        run_id = first.create_run(plan)
        while True:
            lease = first.lease("w1")
            if lease["status"] != "lease":
                break
            first.complete(
                "w1", lease["lease_id"], run_id, lease["group_index"],
                rows_for_group(plan, lease["group_index"]),
            )
        expected = [r.to_row() for r in first.records(run_id, poll_interval=0.01)]
        second = make_coordinator(store)
        assert second.resume_runs() == 1
        status = second.run_status(run_id)
        assert status["completed"] is True and status["done"] == 2
        replayed = [r.to_row() for r in second.records(run_id, poll_interval=0.01)]
        assert replayed == expected
        assert second.lease("w1")["status"] == "idle"         # nothing re-leases

    def test_attempts_and_config_survive_the_crash(self, tmp_path):
        store = make_store(tmp_path)
        payload = config_wire_payload(quick_serve_config())
        first = make_coordinator(store, max_attempts=3)
        plan = make_plan(with_measures=False)
        run_id = first.create_run(plan, payload)
        lease = first.lease("w1")
        assert first.complete(
            "w1", lease["lease_id"], run_id, lease["group_index"], error="boom"
        )["status"] == "retry"
        second = make_coordinator(store, max_attempts=3)
        second.resume_runs()
        release = second.lease("w2")
        assert release["config"] == json.loads(json.dumps(payload))
        # One pre-crash attempt + this lease: one more error must fail the
        # run only at the third attempt, exactly as without the crash.
        assert second.complete(
            "w2", release["lease_id"], run_id, release["group_index"], error="boom"
        )["status"] == "retry"
        third = second.lease("w2")
        assert second.complete(
            "w2", third["lease_id"], run_id, third["group_index"], error="boom"
        )["status"] == "failed"

    def test_cancelled_run_stays_cancelled_after_resume(self, tmp_path):
        store = make_store(tmp_path)
        first = make_coordinator(store)
        run_id = first.create_run(make_plan(with_measures=False))
        first.cancel(run_id)
        second = make_coordinator(store)
        second.resume_runs()
        assert second.run_status(run_id)["cancelled"] is True
        assert second.lease("w1")["status"] == "idle"

    def test_age_gc_deletes_the_checkpoints(self, tmp_path):
        store = make_store(tmp_path)
        clock = FakeClock()
        coordinator = make_coordinator(store, clock, run_gc_age=100.0)
        plan = make_plan(with_measures=False)
        run_id = coordinator.create_run(plan)
        while True:
            lease = coordinator.lease("w1")
            if lease["status"] != "lease":
                break
            coordinator.complete(
                "w1", lease["lease_id"], run_id, lease["group_index"],
                rows_for_group(plan, lease["group_index"]),
            )
        assert store.get_json(CHECKPOINT_KIND, run_id) is not None
        clock.advance(101.0)
        coordinator.lease("w1")                               # sweeps
        assert coordinator.run_status(run_id) is None
        assert store.get_json(CHECKPOINT_KIND, run_id) is None
        assert run_id not in store.get_json(CHECKPOINT_KIND, "runs-index")["runs"]
        # A later restart resumes nothing: the run is fully gone.
        fresh = make_coordinator(store)
        assert fresh.resume_runs() == 0

    def test_no_store_means_no_checkpoints_and_a_clean_noop_resume(self):
        coordinator = ClusterCoordinator(clock=FakeClock())
        coordinator.create_run(make_plan(with_measures=False))
        assert coordinator.counters["checkpoints_written"] == 0
        assert coordinator.resume_runs() == 0


def _boot(service):
    api = StabilityAPIServer(service, port=0)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run_server():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(api.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run_server, daemon=True)
    thread.start()
    assert started.wait(timeout=30), "server failed to start"
    return api, loop, thread


def _stop(api, loop, thread):
    asyncio.run_coroutine_threadsafe(api.stop(), loop).result(timeout=10)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10)


def _stream_rows(port, query=""):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
    conn.request("GET", f"/grid?distributed=true{query}")
    response = conn.getresponse()
    assert response.status == 200
    rows = [json.loads(line) for line in response.read().decode().strip().splitlines()]
    conn.close()
    return rows


class TestLiveCrashResume:
    """Live-HTTP variant: real servers, real workers, an abrupt stop between."""

    def test_kill_and_restart_mid_run(self, tmp_path):
        config = quick_serve_config()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            expected = GridEngine(config).run(with_measures=True)

        # --- incarnation A: disk-backed store, one worker, one group done.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            service_a = StabilityService(
                config,
                store=ArtifactStore(str(tmp_path / "coord")),
                config=ServiceConfig(lease_ttl=30),
            )
        api_a, loop_a, thread_a = _boot(service_a)
        url_a = f"http://127.0.0.1:{api_a.port}"
        # Submit directly (no stream attached): the run must survive with no
        # consumer to cancel it when the server dies.
        plan = plan_grid(config, with_measures=True)
        run_id = service_a.coordinator.create_run(plan)
        worker_a = ClusterWorker(url_a, worker_id="worker-a", poll_interval=0.05)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            assert worker_a.step() is True                    # anchor group done
        assert service_a.coordinator.run_status(run_id)["done"] == 1
        trained_a = worker_a.stats()["embedding_train_count"]
        assert trained_a == 1
        # CRASH: stop the server abruptly; nothing cancels or finishes the run.
        _stop(api_a, loop_a, thread_a)
        worker_a.stop()
        service_a.close()

        # --- incarnation B: same disk store, --resume-runs semantics.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            service_b = StabilityService(
                config,
                store=ArtifactStore(str(tmp_path / "coord")),
                config=ServiceConfig(lease_ttl=30),
            )
        try:
            assert service_b.coordinator.resume_runs() == 1
            status = service_b.coordinator.run_status(run_id)
            assert status["done"] == 1 and status["pending"] == 1
            api_b, loop_b, thread_b = _boot(service_b)
            url_b = f"http://127.0.0.1:{api_b.port}"
            worker_b = ClusterWorker(url_b, worker_id="worker-b", poll_interval=0.05)
            try:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", UserWarning)
                    for _ in range(8):
                        if service_b.coordinator.run_status(run_id)["completed"]:
                            break
                        worker_b.step()
                final = service_b.coordinator.run_status(run_id)
                assert final["completed"] is True
                # Zero duplicate trainings for already-committed cells: the
                # resumed worker trained only the one remaining pair (the
                # anchor pair came warm out of the shared store).
                assert worker_b.stats()["embedding_train_count"] == 1
                counters = service_b.coordinator.snapshot()["counters"]
                assert counters["runs_resumed"] == 1
                assert counters["records_replayed"] == 2
                assert counters["duplicate_results"] == 0
                # Re-attach over HTTP: the full stream, bit-identical to the
                # serial engine, replayed records included.
                rows = _stream_rows(api_b.port, f"&run_id={run_id}")
                assert rows == [record.to_row() for record in expected]
            finally:
                worker_b.stop()
                _stop(api_b, loop_b, thread_b)
        finally:
            service_b.close()

    def test_drain_endpoint_over_http(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            service = StabilityService(
                quick_serve_config(), config=ServiceConfig(lease_ttl=30)
            )
        api, loop, thread = _boot(service)
        try:
            conn = http.client.HTTPConnection("127.0.0.1", api.port, timeout=30)

            def call(method, path, body=None):
                payload = json.dumps(body).encode() if body is not None else None
                conn.request(
                    method, path, body=payload,
                    headers={"Content-Type": "application/json"} if payload else {},
                )
                response = conn.getresponse()
                data = json.loads(response.read())
                assert response.status == 200, data
                return data

            drained = call("POST", "/cluster/drain", {"enable": True})
            assert drained["draining"] is True and drained["drained"] is True
            answer = call("POST", "/cluster/lease", {"worker": "w1"})
            assert answer["status"] == "drain"
            status = call("GET", "/cluster/drain")
            assert status["draining"] is True
            lifted = call("POST", "/cluster/drain", {"enable": False})
            assert lifted["draining"] is False
            assert call("POST", "/cluster/lease", {"worker": "w1"})["status"] == "idle"
            conn.close()
        finally:
            _stop(api, loop, thread)
            service.close()
