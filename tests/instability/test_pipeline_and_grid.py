"""Integration-style tests for the instability pipeline and grid runner."""

import numpy as np
import pytest

from repro.corpus.synthetic import SyntheticCorpusConfig
from repro.instability.grid import GridRunner, average_over_seeds, records_to_rows
from repro.instability.pipeline import InstabilityPipeline, PipelineConfig


@pytest.fixture(scope="module")
def tiny_pipeline():
    config = PipelineConfig(
        corpus=SyntheticCorpusConfig(vocab_size=200, n_documents=120, doc_length_mean=50, seed=7),
        algorithms=("svd",),
        dimensions=(6, 12),
        precisions=(1, 32),
        seeds=(0,),
        tasks=("sst2", "conll"),
        embedding_epochs=3,
        downstream_epochs=5,
        ner_epochs=3,
    )
    return InstabilityPipeline(config)


class TestPipelineConfig:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError):
            PipelineConfig(algorithms=("word2vec-skipgram",))

    def test_unknown_task_rejected(self):
        with pytest.raises(KeyError):
            PipelineConfig(tasks=("imdb",))

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(dimensions=())

    def test_anchor_dim_defaults_to_max(self):
        config = PipelineConfig(dimensions=(8, 64, 16))
        assert config.resolved_anchor_dim == 64
        assert PipelineConfig(anchor_dim=128).resolved_anchor_dim == 128


class TestPipeline:
    def test_embedding_pair_cached_and_aligned(self, tiny_pipeline):
        pair1 = tiny_pipeline.embedding_pair("svd", 6, 0)
        pair2 = tiny_pipeline.embedding_pair("svd", 6, 0)
        assert pair1[0] is pair2[0]
        assert pair1[0].vocab.words == pair1[1].vocab.words

    def test_compressed_pair_precision(self, tiny_pipeline):
        qa, qb = tiny_pipeline.compressed_pair("svd", 6, 1, 0)
        assert len(np.unique(qa.vectors)) <= 2
        assert qa.metadata["precision"] == 1
        # Full precision passes the original objects through.
        fa, _ = tiny_pipeline.compressed_pair("svd", 6, 32, 0)
        assert fa is tiny_pipeline.embedding_pair("svd", 6, 0)[0]

    def test_datasets_are_cached_and_split(self, tiny_pipeline):
        splits = tiny_pipeline.dataset("sst2")
        assert splits is tiny_pipeline.dataset("sst2")
        assert len(splits.train) > len(splits.test) > 0

    def test_measure_computation(self, tiny_pipeline):
        measures = tiny_pipeline.compute_measures("svd", 6, 1, 0)
        assert set(measures) == {"eis", "1-knn", "semantic-displacement", "pip",
                                 "1-eigenspace-overlap"}
        assert all(np.isfinite(v) for v in measures.values())

    def test_measure_subset(self, tiny_pipeline):
        measures = tiny_pipeline.compute_measures("svd", 6, 1, 0, measures=("eis",))
        assert set(measures) == {"eis"}

    def test_evaluate_caches_results(self, tiny_pipeline):
        a = tiny_pipeline.evaluate("sst2", "svd", 6, 1, 0)
        b = tiny_pipeline.evaluate("sst2", "svd", 6, 1, 0)
        assert a is b
        assert 0.0 <= a.disagreement <= 100.0
        assert 0.0 <= a.accuracy_a <= 1.0

    def test_ner_evaluation(self, tiny_pipeline):
        result = tiny_pipeline.evaluate("conll", "svd", 6, 32, 0)
        assert result.task == "conll"
        assert 0.0 <= result.disagreement <= 100.0

    def test_downstream_result_seed_overrides(self, tiny_pipeline):
        emb_a, emb_b = tiny_pipeline.embedding_pair("svd", 12, 0)
        same_emb = tiny_pipeline.downstream_result("sst2", emb_a, emb_a, 0)
        assert same_emb.disagreement == 0.0
        different_init = tiny_pipeline.downstream_result(
            "sst2", emb_a, emb_a, 0, init_seed_b=99
        )
        assert different_init.disagreement >= 0.0


class TestGridRunner:
    def test_grid_shape_and_rows(self, tiny_pipeline):
        records = GridRunner(tiny_pipeline).run(with_measures=True)
        # 1 algorithm x 2 dims x 2 precisions x 1 seed x 2 tasks.
        assert len(records) == 8
        rows = records_to_rows(records)
        assert rows[0]["memory"] == rows[0]["dim"] * rows[0]["precision"]
        assert any(key.startswith("measure_") for key in rows[0])

    def test_average_over_seeds(self, tiny_pipeline):
        records = GridRunner(tiny_pipeline).run(with_measures=False)
        averaged = average_over_seeds(records)
        assert len(averaged) == len(records)  # single seed: same count, seed=-1
        assert all(r.seed == -1 for r in averaged)

    def test_axis_overrides(self, tiny_pipeline):
        records = GridRunner(tiny_pipeline).run(
            dimensions=(6,), precisions=(32,), tasks=("sst2",), with_measures=False
        )
        assert len(records) == 1
        assert records[0].dim == 6 and records[0].precision == 32
